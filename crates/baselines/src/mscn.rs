//! MSCN-style multi-set convolutional network (Kipf et al., CIDR 2019)
//! adapted to runtime prediction.
//!
//! The defining property the paper highlights: the featurization is
//! **database-specific** — tables, join edges and columns are one-hot
//! encoded by their position in the target database's catalog and literal
//! values are normalised by that database's column domains.  The model can
//! therefore only be trained per database and cannot transfer.

use serde::{Deserialize, Serialize};
use zsdb_catalog::{ColumnRef, SchemaCatalog};
use zsdb_engine::QueryExecution;
use zsdb_nn::{Activation, Adam, Mlp};
use zsdb_query::{CmpOp, Query};

/// Hyper-parameters of the MSCN baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MscnConfig {
    /// Hidden dimension of the per-set MLPs.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initialisation / shuffling seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig {
            hidden_dim: 32,
            epochs: 60,
            learning_rate: 1.5e-3,
            seed: 11,
        }
    }
}

/// The MSCN baseline model, bound to one database schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MscnModel {
    config: MscnConfig,
    num_tables: usize,
    num_joins: usize,
    columns: Vec<ColumnRef>,
    table_mlp: Mlp,
    join_mlp: Mlp,
    predicate_mlp: Mlp,
    output_mlp: Mlp,
}

impl MscnModel {
    /// Create an untrained MSCN model for one database schema.
    pub fn new(catalog: &SchemaCatalog, config: MscnConfig) -> Self {
        let num_tables = catalog.num_tables();
        let num_joins = catalog.foreign_keys().len().max(1);
        let columns: Vec<ColumnRef> = catalog
            .iter_tables()
            .flat_map(|(tid, t)| {
                (0..t.num_columns())
                    .map(move |i| ColumnRef::new(tid, zsdb_catalog::ColumnId(i as u32)))
            })
            .collect();
        let h = config.hidden_dim;
        // Predicate feature: column one-hot + operator one-hot + normalised literal.
        let pred_dim = columns.len() + CmpOp::ALL.len() + 1;
        MscnModel {
            table_mlp: Mlp::new(
                &[num_tables + 1, h, h],
                Activation::LeakyRelu,
                config.seed ^ 1,
            ),
            join_mlp: Mlp::new(&[num_joins, h, h], Activation::LeakyRelu, config.seed ^ 2),
            predicate_mlp: Mlp::new(&[pred_dim, h, h], Activation::LeakyRelu, config.seed ^ 3),
            output_mlp: Mlp::new(&[3 * h, h, 1], Activation::LeakyRelu, config.seed ^ 4),
            config,
            num_tables,
            num_joins,
            columns,
        }
    }

    fn table_vectors(&self, catalog: &SchemaCatalog, query: &Query) -> Vec<Vec<f64>> {
        query
            .tables
            .iter()
            .map(|t| {
                let mut v = vec![0.0; self.num_tables + 1];
                v[t.index()] = 1.0;
                // MSCN also feeds a size hint per table sample bitmap; we use
                // the (log) table size as the simplest analogue.
                v[self.num_tables] = (catalog.table(*t).num_tuples as f64 + 1.0).ln() / 20.0;
                v
            })
            .collect()
    }

    fn join_vectors(&self, catalog: &SchemaCatalog, query: &Query) -> Vec<Vec<f64>> {
        if query.joins.is_empty() {
            return vec![vec![0.0; self.num_joins]];
        }
        query
            .joins
            .iter()
            .map(|j| {
                let mut v = vec![0.0; self.num_joins];
                if let Some(pos) = catalog
                    .foreign_keys()
                    .iter()
                    .position(|fk| fk.connects(j.left.table, j.right.table))
                {
                    v[pos] = 1.0;
                }
                v
            })
            .collect()
    }

    fn predicate_vectors(&self, catalog: &SchemaCatalog, query: &Query) -> Vec<Vec<f64>> {
        let dim = self.columns.len() + CmpOp::ALL.len() + 1;
        if query.predicates.is_empty() {
            return vec![vec![0.0; dim]];
        }
        query
            .predicates
            .iter()
            .map(|p| {
                let mut v = vec![0.0; dim];
                if let Some(pos) = self.columns.iter().position(|c| *c == p.column) {
                    v[pos] = 1.0;
                }
                v[self.columns.len() + p.op.index()] = 1.0;
                // Literal normalised into [0, 1] by the column's domain —
                // exactly the database-specific encoding the paper calls out.
                let stats = &catalog.column(p.column).stats;
                let lo = stats.min.unwrap_or(0.0);
                let hi = stats.max.unwrap_or(1.0).max(lo + 1e-9);
                let lit = p.value.as_f64().unwrap_or(lo);
                v[dim - 1] = ((lit - lo) / (hi - lo)).clamp(0.0, 1.0);
                v
            })
            .collect()
    }

    /// Forward pass: mean-pool each set through its MLP, concatenate and
    /// decode to a log-runtime.
    fn forward(&self, catalog: &SchemaCatalog, query: &Query) -> f64 {
        let pooled = |mlp: &Mlp, items: &[Vec<f64>]| -> Vec<f64> {
            let mut acc = vec![0.0; self.config.hidden_dim];
            for item in items {
                let out = mlp.forward(item);
                for (a, o) in acc.iter_mut().zip(&out) {
                    *a += o / items.len() as f64;
                }
            }
            acc
        };
        let mut features = pooled(&self.table_mlp, &self.table_vectors(catalog, query));
        features.extend(pooled(&self.join_mlp, &self.join_vectors(catalog, query)));
        features.extend(pooled(
            &self.predicate_mlp,
            &self.predicate_vectors(catalog, query),
        ));
        self.output_mlp.forward(&features)[0]
    }

    /// Predict the runtime (seconds) of a query.
    pub fn predict(&self, catalog: &SchemaCatalog, query: &Query) -> f64 {
        self.forward(catalog, query).exp()
    }

    /// Train on executions of the target database (in place).
    pub fn train(&mut self, catalog: &SchemaCatalog, executions: &[QueryExecution]) {
        if executions.is_empty() {
            return;
        }
        let mut adam = Adam::new(self.config.learning_rate);
        for _epoch in 0..self.config.epochs {
            for e in executions {
                self.train_step(catalog, e);
            }
            let mut params = Vec::new();
            params.extend(self.table_mlp.params_mut());
            params.extend(self.join_mlp.params_mut());
            params.extend(self.predicate_mlp.params_mut());
            params.extend(self.output_mlp.params_mut());
            adam.step(&mut params);
        }
    }

    /// One backpropagation step for a single example (gradient
    /// accumulation only).
    fn train_step(&mut self, catalog: &SchemaCatalog, execution: &QueryExecution) {
        let query = &execution.query;
        let table_items = self.table_vectors(catalog, query);
        let join_items = self.join_vectors(catalog, query);
        let pred_items = self.predicate_vectors(catalog, query);
        let h = self.config.hidden_dim;

        // Forward with caches.
        let pool = |mlp: &Mlp, items: &[Vec<f64>]| {
            let mut caches = Vec::with_capacity(items.len());
            let mut acc = vec![0.0; h];
            for item in items {
                let (out, cache) = mlp.forward_cached(item);
                for (a, o) in acc.iter_mut().zip(&out) {
                    *a += o / items.len() as f64;
                }
                caches.push(cache);
            }
            (acc, caches)
        };
        let (t_pool, t_caches) = pool(&self.table_mlp, &table_items);
        let (j_pool, j_caches) = pool(&self.join_mlp, &join_items);
        let (p_pool, p_caches) = pool(&self.predicate_mlp, &pred_items);
        let mut features = t_pool;
        features.extend(j_pool);
        features.extend(p_pool);
        let (out, out_cache) = self.output_mlp.forward_cached(&features);

        let target = execution.runtime_secs.max(1e-9).ln();
        let d_out = vec![2.0 * (out[0] - target)];
        let d_features = self.output_mlp.backward(&out_cache, &d_out);

        // Split the gradient back onto the three pooled vectors and push it
        // through every set element (mean pooling → divide by set size).
        let backprop_set =
            |mlp: &mut Mlp, caches: &[zsdb_nn::MlpCache], offset: usize, n: usize| {
                let grad = &d_features[offset..offset + h];
                for cache in caches {
                    let scaled: Vec<f64> = grad.iter().map(|g| g / n as f64).collect();
                    mlp.backward(cache, &scaled);
                }
            };
        backprop_set(&mut self.table_mlp, &t_caches, 0, table_items.len());
        backprop_set(&mut self.join_mlp, &j_caches, h, join_items.len());
        backprop_set(&mut self.predicate_mlp, &p_caches, 2 * h, pred_items.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::dataset::collect_for_database;
    use zsdb_nn::{median, q_error};
    use zsdb_query::WorkloadSpec;
    use zsdb_storage::Database;

    #[test]
    fn mscn_learns_on_its_training_database() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 150, 1);
        let (train, test) = executions.split_at(120);
        let mut model = MscnModel::new(db.catalog(), MscnConfig::default());

        let before: Vec<f64> = test
            .iter()
            .map(|e| q_error(model.predict(db.catalog(), &e.query), e.runtime_secs))
            .collect();
        model.train(db.catalog(), train);
        let after: Vec<f64> = test
            .iter()
            .map(|e| q_error(model.predict(db.catalog(), &e.query), e.runtime_secs))
            .collect();
        assert!(
            median(&after) < median(&before),
            "training should improve MSCN: {} -> {}",
            median(&before),
            median(&after)
        );
    }

    #[test]
    fn predictions_are_positive() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let model = MscnModel::new(db.catalog(), MscnConfig::default());
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 5, 9);
        for e in &executions {
            assert!(model.predict(db.catalog(), &e.query) > 0.0);
        }
    }

    #[test]
    fn featurization_is_database_specific() {
        // The feature dimensionality depends on the catalog — the defining
        // non-transferable property.
        let imdb = presets::imdb_like(0.02);
        let ssb = presets::ssb_like(0.02);
        let a = MscnModel::new(&imdb, MscnConfig::default());
        let b = MscnModel::new(&ssb, MscnConfig::default());
        assert_ne!(a.columns.len(), b.columns.len());
        assert_ne!(a.num_tables, b.num_tables);
    }
}
