//! The "Scaled Optimizer Costs" baseline: a linear model fit from the
//! classical optimizer's cost metric to observed runtimes.

use serde::{Deserialize, Serialize};
use zsdb_engine::QueryExecution;

/// Linear regression `runtime ≈ slope · cost + intercept`, fit by ordinary
/// least squares on the training executions of the target database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaledOptimizerCost {
    /// Fitted slope (seconds per planner cost unit).
    pub slope: f64,
    /// Fitted intercept (seconds).
    pub intercept: f64,
    /// Number of training executions the fit used.
    pub num_samples: usize,
}

impl ScaledOptimizerCost {
    /// Fit the linear model on training executions.  With fewer than two
    /// samples the model degenerates to predicting the mean (or 1 ms).
    pub fn fit(executions: &[QueryExecution]) -> Self {
        let n = executions.len();
        if n == 0 {
            return ScaledOptimizerCost {
                slope: 0.0,
                intercept: 1e-3,
                num_samples: 0,
            };
        }
        let xs: Vec<f64> = executions.iter().map(|e| e.optimizer_cost()).collect();
        let ys: Vec<f64> = executions.iter().map(|e| e.runtime_secs).collect();
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            cov += (x - mean_x) * (y - mean_y);
            var += (x - mean_x) * (x - mean_x);
        }
        let slope = if var > 1e-12 { cov / var } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        ScaledOptimizerCost {
            slope,
            intercept,
            num_samples: n,
        }
    }

    /// Predict the runtime (seconds) of a planned query from its optimizer
    /// cost.
    pub fn predict_cost(&self, optimizer_cost: f64) -> f64 {
        (self.slope * optimizer_cost + self.intercept).max(1e-6)
    }

    /// Predict the runtime of an executed/planned query.
    pub fn predict(&self, execution: &QueryExecution) -> f64 {
        self.predict_cost(execution.optimizer_cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::dataset::collect_for_database;
    use zsdb_nn::{median, q_error};
    use zsdb_query::WorkloadSpec;
    use zsdb_storage::Database;

    #[test]
    fn fit_recovers_reasonable_mapping() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 120, 1);
        let (train, test) = executions.split_at(80);
        let model = ScaledOptimizerCost::fit(train);
        assert_eq!(model.num_samples, 80);
        let qs: Vec<f64> = test
            .iter()
            .map(|e| q_error(model.predict(e), e.runtime_secs))
            .collect();
        let med = median(&qs);
        // The optimizer cost correlates with runtime, so the scaled cost
        // should be within a moderate factor on most queries.
        assert!(med < 5.0, "median q-error {med}");
    }

    #[test]
    fn degenerate_fits_do_not_panic() {
        let model = ScaledOptimizerCost::fit(&[]);
        assert!(model.predict_cost(1000.0) > 0.0);
    }

    #[test]
    fn predictions_are_monotone_in_cost() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 60, 2);
        let model = ScaledOptimizerCost::fit(&executions);
        if model.slope > 0.0 {
            assert!(model.predict_cost(10_000.0) > model.predict_cost(10.0));
        }
    }
}
