//! # zsdb-baselines
//!
//! Workload-driven baselines the paper compares against (Figure 3):
//!
//! * [`ScaledOptimizerCost`] — a linear model mapping the classical
//!   optimizer's cost metric to runtimes,
//! * [`MscnModel`] — the multi-set convolutional network of Kipf et al.
//!   (CIDR 2019) adapted to runtime prediction: table / join / predicate
//!   sets with **database-specific one-hot encodings** and literal values,
//! * [`E2EModel`] — a plan-tree model in the spirit of Sun & Li (VLDB
//!   2019): the same tree-structured message passing as the zero-shot
//!   model, but with a non-transferable (hashed one-hot) featurization of
//!   tables and columns and the optimizer's estimated cardinalities.
//!
//! All three are trained on executions of the *target* database only —
//! exactly the property the paper criticises: training data must be
//! collected anew for every database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e2e;
pub mod mscn;
pub mod opt_cost;

pub use e2e::E2EModel;
pub use mscn::{MscnConfig, MscnModel};
pub use opt_cost::ScaledOptimizerCost;
