//! E2E-style plan-tree baseline (Sun & Li, VLDB 2019).
//!
//! The E2E cost estimator is a tree-structured neural model over physical
//! plans whose featurization is tied to one database: tables and columns
//! enter as identity one-hots and the model is trained end-to-end on the
//! target database's executions (data *and* system characteristics learned
//! jointly).  Here the tree-structured message passing is shared with the
//! zero-shot model; the difference is precisely the featurization
//! ([`FeatureMode::HashedOneHot`] + the optimizer's estimated
//! cardinalities) and the single-database training data — which is the
//! comparison the paper draws.

use serde::{Deserialize, Serialize};
use zsdb_core::features::{featurize_execution, FeatureMode, FeaturizerConfig};
use zsdb_core::model::{ModelConfig, ZeroShotCostModel};
use zsdb_core::CardinalityMode;
use zsdb_engine::QueryExecution;
use zsdb_nn::Adam;
use zsdb_storage::Database;

/// The E2E baseline: plan-tree model with a database-specific
/// featurization, trained per database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2EModel {
    model: ZeroShotCostModel,
    featurizer: FeaturizerConfig,
    epochs: usize,
    learning_rate: f64,
}

impl E2EModel {
    /// Create an untrained E2E model.
    pub fn new(model_config: ModelConfig, epochs: usize, learning_rate: f64) -> Self {
        E2EModel {
            model: ZeroShotCostModel::new(model_config),
            featurizer: FeaturizerConfig {
                cardinality_mode: CardinalityMode::Estimated,
                feature_mode: FeatureMode::HashedOneHot,
            },
            epochs,
            learning_rate,
        }
    }

    /// E2E model with default hyper-parameters.
    pub fn with_defaults() -> Self {
        E2EModel::new(ModelConfig::default(), 60, 1.5e-3)
    }

    /// Train on executions collected from the target database (in place).
    pub fn train(&mut self, db: &Database, executions: &[QueryExecution]) {
        if executions.is_empty() {
            return;
        }
        let graphs: Vec<_> = executions
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, self.featurizer))
            .collect();
        let mut adam = Adam::new(self.learning_rate);
        for _ in 0..self.epochs {
            self.model.zero_grad();
            let mut in_batch = 0usize;
            for g in &graphs {
                self.model
                    .accumulate_gradients(g, g.runtime_secs.expect("labelled"));
                in_batch += 1;
                if in_batch == 16 {
                    self.model.apply_step(&mut adam);
                    self.model.zero_grad();
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                self.model.apply_step(&mut adam);
                self.model.zero_grad();
            }
        }
    }

    /// Predict the runtime (seconds) of an executed/planned query on `db`.
    pub fn predict(&self, db: &Database, execution: &QueryExecution) -> f64 {
        let graph = featurize_execution(db.catalog(), execution, self.featurizer);
        self.model.predict(&graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::dataset::collect_for_database;
    use zsdb_nn::{median, q_error};
    use zsdb_query::WorkloadSpec;

    #[test]
    fn e2e_learns_its_training_database() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 150, 1);
        let (train, test) = executions.split_at(120);
        let mut model = E2EModel::new(zsdb_core::ModelConfig::tiny(), 40, 2e-3);
        model.train(&db, train);
        let qs: Vec<f64> = test
            .iter()
            .map(|e| q_error(model.predict(&db, e), e.runtime_secs))
            .collect();
        let med = median(&qs);
        assert!(med < 4.0, "E2E median q-error on its own database: {med}");
    }

    #[test]
    fn e2e_does_not_transfer_across_databases() {
        // Train on IMDB-like, evaluate on SSB-like: the hashed one-hot
        // featurization carries no meaning on the new schema, so errors are
        // typically much larger than on the training database.
        let imdb = Database::generate(presets::imdb_like(0.02), 3);
        let train = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 120, 1);
        let mut model = E2EModel::new(zsdb_core::ModelConfig::tiny(), 40, 2e-3);
        model.train(&imdb, &train);
        let own: Vec<f64> = train
            .iter()
            .map(|e| q_error(model.predict(&imdb, e), e.runtime_secs))
            .collect();

        let ssb = Database::generate(presets::ssb_like(0.02), 4);
        let foreign = collect_for_database(&ssb, &WorkloadSpec::paper_training(), 60, 2);
        let transferred: Vec<f64> = foreign
            .iter()
            .map(|e| q_error(model.predict(&ssb, e), e.runtime_secs))
            .collect();
        // At unit-test scale runtimes are overhead-dominated, so allow a
        // small tolerance; the full-scale comparison is made by the
        // benchmark harness.
        assert!(
            median(&transferred) >= median(&own) * 0.9,
            "non-transferable model should not be clearly better on an unseen database: own {} vs foreign {}",
            median(&own),
            median(&transferred)
        );
    }

    #[test]
    fn untrained_model_predicts_positive_runtimes() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 3, 7);
        let model = E2EModel::with_defaults();
        for e in &executions {
            assert!(model.predict(&db, e) > 0.0);
        }
    }
}
