//! # zsdb-protocol — framed wire protocol of the prediction service
//!
//! The serving stack's network layer speaks a length-prefixed framed
//! binary protocol over any ordered byte stream (TCP in practice).  This
//! crate is the *pure* half of that layer: frame layout, typed messages,
//! and encode/decode functions that never touch a socket — everything is
//! unit-testable (and property-testable) on byte slices.
//!
//! ## Frame layout
//!
//! Every frame is a fixed 20-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"ZSDB"
//! 4       1     protocol version (PROTOCOL_VERSION)
//! 5       1     opcode (see Message::opcode)
//! 6       2     flags, reserved — must be zero (little endian)
//! 8       8     request id (little endian)
//! 16      4     payload length n (little endian)
//! 20      n     payload — UTF-8 JSON of the op's payload type
//! ```
//!
//! Request ids are chosen by the client and echoed verbatim by the
//! server, so many in-flight requests can share one connection
//! (pipelining) and responses may be matched out of order.  Payloads are
//! JSON: the vendored serializer emits shortest-round-trip floats, so an
//! `f64` crosses the wire bit-exactly — the served prediction a client
//! decodes is bit-identical to the in-process one.
//!
//! ## Ops
//!
//! * [`Message::Hello`] / [`Message::HelloAck`] — connection handshake;
//!   carries the tenant id the gateway authenticates and meters.
//! * [`Message::Predict`] / [`Message::PredictOk`] — one plan, one
//!   prediction.
//! * [`Message::PredictBatch`] / [`Message::PredictBatchOk`] — many plans
//!   answered by one batched forward pass.
//! * [`Message::Metrics`] / [`Message::MetricsOk`] — gateway + per-tenant
//!   serving metrics.
//! * [`Message::Health`] / [`Message::HealthOk`] — liveness probe.
//! * [`Message::Error`] — structured failure (code + human message) for
//!   any request; carries the rejected request's id.
//!
//! Use [`encode_frame`]/[`decode_frame`] on buffers and
//! [`read_frame`]/[`write_frame`] on `io` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod message;

pub use error::ProtocolError;
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, HEADER_LEN, MAGIC, MAX_PAYLOAD_LEN,
    PROTOCOL_VERSION,
};
pub use message::{
    ErrorCode, ErrorResponse, GatewayMetrics, HealthResponse, HelloAck, HelloRequest, Message,
    TenantMetrics, WirePrediction,
};
