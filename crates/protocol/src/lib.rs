//! # zsdb-protocol — framed wire protocol of the prediction service
//!
//! The serving stack's network layer speaks a length-prefixed framed
//! binary protocol over any ordered byte stream (TCP in practice).  This
//! crate is the *pure* half of that layer: frame layout, typed messages,
//! and encode/decode functions that never touch a socket — everything is
//! unit-testable (and property-testable) on byte slices.
//!
//! ## Frame layout
//!
//! Every frame is a fixed 20-byte header, optional header extensions,
//! then the payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"ZSDB"
//! 4       1     protocol version (1 or 2)
//! 5       1     opcode (see Message::opcode)
//! 6       2     flags (little endian) — zero in version 1
//! 8       8     request id (little endian)
//! 16      4     payload length n (little endian)
//! 20      8     trace id (little endian) — only when flag 0x0001 is set
//! 20|28   n     payload — UTF-8 JSON of the op's payload type
//! ```
//!
//! Version 2 defines flag bit `0x0001` ([`FLAG_TRACE_ID`]): an 8-byte
//! request-scoped trace id follows the fixed header, letting a client
//! correlate its request with the server-side per-stage trace.  Frames
//! without a trace id are emitted as version 1 regardless of the build,
//! so tracing-unaware peers interoperate untouched; decoders accept both
//! versions and reject unknown flag bits.
//!
//! Request ids are chosen by the client and echoed verbatim by the
//! server, so many in-flight requests can share one connection
//! (pipelining) and responses may be matched out of order.  Payloads are
//! JSON: the vendored serializer emits shortest-round-trip floats, so an
//! `f64` crosses the wire bit-exactly — the served prediction a client
//! decodes is bit-identical to the in-process one.
//!
//! ## Ops
//!
//! * [`Message::Hello`] / [`Message::HelloAck`] — connection handshake;
//!   carries the tenant id the gateway authenticates and meters.
//! * [`Message::Predict`] / [`Message::PredictOk`] — one plan, one
//!   prediction.
//! * [`Message::PredictBatch`] / [`Message::PredictBatchOk`] — many plans
//!   answered by one batched forward pass.
//! * [`Message::Metrics`] / [`Message::MetricsOk`] — gateway + per-tenant
//!   serving metrics (JSON).
//! * [`Message::MetricsText`] / [`Message::MetricsTextOk`] — the same
//!   metrics in Prometheus text-exposition form (raw UTF-8 payload).
//! * [`Message::Health`] / [`Message::HealthOk`] — liveness probe.
//! * [`Message::Explain`] / [`Message::ExplainOk`] — full provenance of
//!   one served prediction by trace id: plan fingerprint, model
//!   name/version, cache hit, shard placement, per-stage breakdown
//!   (protocol v2; older servers answer `Error(BadRequest)`).
//! * [`Message::SlowLog`] / [`Message::SlowLogOk`] — the slowest
//!   retained requests from the flight recorder, worst first
//!   (protocol v2).
//! * [`Message::SloStatus`] / [`Message::SloStatusOk`] — SLO burn-rate
//!   position over the server's rolling windows (protocol v2).
//! * [`Message::Error`] — structured failure (code + human message) for
//!   any request; carries the rejected request's id.
//!
//! Use [`encode_frame`]/[`decode_frame`] on buffers and
//! [`read_frame`]/[`write_frame`] on `io` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod message;

pub use error::ProtocolError;
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FLAG_TRACE_ID, HEADER_LEN, MAGIC,
    MAX_PAYLOAD_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, TRACE_ID_EXT_LEN,
};
pub use message::{
    ErrorCode, ErrorResponse, ExplainRequest, GatewayMetrics, HealthResponse, HelloAck,
    HelloRequest, Message, ProvenanceRecord, ProvenanceStage, SlowLogRequest, TenantMetrics,
    WirePrediction, WireSloStatus, WireSloWindow,
};
