//! Typed protocol messages and their JSON payload types.

use serde::{Deserialize, Serialize};
use zsdb_engine::PlanNode;

/// Handshake request — the first frame a client must send on a fresh
/// connection.  The gateway authenticates and meters the `tenant`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloRequest {
    /// Protocol version the client speaks.
    pub protocol_version: u8,
    /// Tenant identifier the connection's requests are accounted to.
    pub tenant: String,
}

/// Handshake acknowledgement — the server accepted the connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloAck {
    /// Protocol version the server speaks.
    pub protocol_version: u8,
    /// Version of the model currently served (changes across hot-swaps).
    pub model_version: u32,
    /// The tenant's admission-control quota: maximum in-flight requests
    /// before the gateway rejects with [`ErrorCode::QuotaExceeded`].
    pub tenant_quota: u64,
}

/// One served prediction as it crosses the wire — the network mirror of
/// `zsdb_serve::Prediction` (latency travels as integer microseconds;
/// `runtime_secs` round-trips bit-exactly through the JSON encoding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePrediction {
    /// Predicted runtime in seconds.
    pub runtime_secs: f64,
    /// Structural fingerprint of the request plan.
    pub fingerprint: u64,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Server-side enqueue-to-response latency in microseconds.
    pub server_latency_micros: u64,
    /// Version of the model that answered.
    pub model_version: u32,
}

/// Machine-readable failure category of an [`ErrorResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The connection has not completed the `Hello` handshake.
    Unauthenticated,
    /// The request frame could not be interpreted.
    BadRequest,
    /// The tenant exceeded its in-flight admission quota; retry after
    /// outstanding requests complete.
    QuotaExceeded,
    /// The server's bounded request queue is full (load shedding); retry
    /// with backoff.
    Overloaded,
    /// The server is shutting down and no longer answers requests.
    Closed,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Whether a client may retry the identical request and expect it to
    /// eventually succeed (backpressure conditions, not hard failures).
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::QuotaExceeded | ErrorCode::Overloaded)
    }
}

/// Structured error frame: answers any request that could not be served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Liveness probe response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Whether the server is accepting and answering requests.
    pub healthy: bool,
    /// Version of the model currently served.
    pub model_version: u32,
}

/// Per-tenant gateway accounting, reported by the `Metrics` op.
///
/// `admitted = completed + in_flight` at all times; rejections are *not*
/// admitted.  Latency percentiles are over the tenant's recent completed
/// requests and are `0.0` until the tenant completes one.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantMetrics {
    /// Tenant identifier from the handshake.
    pub tenant: String,
    /// Requests admitted past admission control (includes in-flight).
    pub admitted: u64,
    /// Requests fully answered.
    pub completed: u64,
    /// Requests rejected by the per-tenant admission quota.
    pub rejected_quota: u64,
    /// Admitted requests shed by the server's bounded queue
    /// (`Overloaded`).
    pub rejected_shed: u64,
    /// Requests currently admitted but not yet answered.
    pub in_flight: u64,
    /// The tenant's admission quota (maximum `in_flight`).
    pub quota: u64,
    /// Median response latency (gateway-observed) in milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile response latency in milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile response latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Fastest response the tenant ever saw, in milliseconds (lifetime
    /// minimum; `0.0` until the tenant completes a request).
    pub latency_min_ms: f64,
    /// Slowest response the tenant ever saw, in milliseconds (lifetime
    /// maximum).
    pub latency_max_ms: f64,
}

/// Deserialization helper: read a struct field, substituting the type's
/// default when the field is absent.  Lets this build decode metrics
/// payloads from servers predating the field (the reverse direction is
/// free — old builds ignore unknown fields).
fn field_or_default<T: serde::Deserialize + Default>(
    value: &serde::Value,
    name: &str,
) -> Result<T, serde::Error> {
    let entries = value
        .as_object()
        .ok_or_else(|| serde::Error::custom(format!("expected object, found {}", value.kind())))?;
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

impl serde::Deserialize for TenantMetrics {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TenantMetrics {
            tenant: serde::Deserialize::from_value(serde::__field(value, "tenant")?)?,
            admitted: serde::Deserialize::from_value(serde::__field(value, "admitted")?)?,
            completed: serde::Deserialize::from_value(serde::__field(value, "completed")?)?,
            rejected_quota: serde::Deserialize::from_value(serde::__field(
                value,
                "rejected_quota",
            )?)?,
            rejected_shed: serde::Deserialize::from_value(serde::__field(value, "rejected_shed")?)?,
            in_flight: serde::Deserialize::from_value(serde::__field(value, "in_flight")?)?,
            quota: serde::Deserialize::from_value(serde::__field(value, "quota")?)?,
            latency_p50_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "latency_p50_ms",
            )?)?,
            latency_p95_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "latency_p95_ms",
            )?)?,
            latency_p99_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "latency_p99_ms",
            )?)?,
            // Added after protocol v1 shipped; absent from old servers.
            latency_min_ms: field_or_default(value, "latency_min_ms")?,
            latency_max_ms: field_or_default(value, "latency_max_ms")?,
        })
    }
}

/// Gateway-wide metrics: the network front-end's view of the serving
/// stack, including every tenant's accounting.  All floats are finite
/// (empty percentiles are reported as `0.0`) so the payload always
/// round-trips through JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GatewayMetrics {
    /// Connections accepted over the gateway's lifetime.
    pub connections_total: u64,
    /// Currently open connections.
    pub connections_active: u64,
    /// Requests fully served by the prediction server behind the gateway.
    pub server_total_requests: u64,
    /// Requests rejected by the prediction server's load shedding.
    pub server_rejected_requests: u64,
    /// Prediction-server throughput (completed requests per second of
    /// serving time, measured from the first request).
    pub server_throughput_qps: f64,
    /// Server-side median latency in milliseconds.
    pub server_latency_p50_ms: f64,
    /// Server-side 95th-percentile latency in milliseconds.
    pub server_latency_p95_ms: f64,
    /// Server-side 99th-percentile latency in milliseconds.
    pub server_latency_p99_ms: f64,
    /// Version of the model currently served.
    pub model_version: u32,
    /// Per-tenant accounting, sorted by tenant id.
    pub tenants: Vec<TenantMetrics>,
    /// Seconds the prediction server has been up (since construction).
    pub uptime_seconds: f64,
    /// Requests currently sitting in the server's bounded queue.
    pub queue_depth: u64,
    /// Fastest server-side latency ever observed, in milliseconds
    /// (lifetime minimum; `0.0` until a request completes).
    pub server_latency_min_ms: f64,
    /// Slowest server-side latency ever observed, in milliseconds.
    pub server_latency_max_ms: f64,
    /// Samples currently held by the server's latency window.
    pub window_occupancy: u64,
    /// Total latency-window capacity across recording threads.
    pub window_capacity: u64,
}

impl serde::Deserialize for GatewayMetrics {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(GatewayMetrics {
            connections_total: serde::Deserialize::from_value(serde::__field(
                value,
                "connections_total",
            )?)?,
            connections_active: serde::Deserialize::from_value(serde::__field(
                value,
                "connections_active",
            )?)?,
            server_total_requests: serde::Deserialize::from_value(serde::__field(
                value,
                "server_total_requests",
            )?)?,
            server_rejected_requests: serde::Deserialize::from_value(serde::__field(
                value,
                "server_rejected_requests",
            )?)?,
            server_throughput_qps: serde::Deserialize::from_value(serde::__field(
                value,
                "server_throughput_qps",
            )?)?,
            server_latency_p50_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "server_latency_p50_ms",
            )?)?,
            server_latency_p95_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "server_latency_p95_ms",
            )?)?,
            server_latency_p99_ms: serde::Deserialize::from_value(serde::__field(
                value,
                "server_latency_p99_ms",
            )?)?,
            model_version: serde::Deserialize::from_value(serde::__field(value, "model_version")?)?,
            tenants: serde::Deserialize::from_value(serde::__field(value, "tenants")?)?,
            // Added after protocol v1 shipped; absent from old servers.
            uptime_seconds: field_or_default(value, "uptime_seconds")?,
            queue_depth: field_or_default(value, "queue_depth")?,
            server_latency_min_ms: field_or_default(value, "server_latency_min_ms")?,
            server_latency_max_ms: field_or_default(value, "server_latency_max_ms")?,
            window_occupancy: field_or_default(value, "window_occupancy")?,
            window_capacity: field_or_default(value, "window_capacity")?,
        })
    }
}

/// One pipeline stage of a [`ProvenanceRecord`]: the name the serving
/// layer marked and how long the request spent there.  The stage
/// durations tile the record's `total_ns` exactly (checkpoint tracing —
/// no gaps, no overlap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceStage {
    /// Stage name (e.g. `queue_wait`, `forward`, `respond`).
    pub name: String,
    /// Stage duration in nanoseconds.
    pub duration_ns: u64,
}

/// Full provenance of one served prediction, answering "where did this
/// number come from?": which plan, which model, which shard, whether the
/// feature cache hit, and where the time went.  Returned by
/// [`Message::ExplainOk`] and listed by [`Message::SlowLogOk`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Request-scoped trace id the record is keyed by.
    pub trace_id: u64,
    /// Structural fingerprint of the predicted plan.
    pub fingerprint: u64,
    /// Name of the serving model family.
    pub model_name: String,
    /// Version of the model that produced the prediction.
    pub model_version: u32,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Shard the plan's fingerprint hashes to.
    pub home_shard: u32,
    /// Shard whose worker actually executed the request.
    pub executed_shard: u32,
    /// Whether the request was work-stolen (`executed_shard` differs
    /// from `home_shard`).
    pub stolen: bool,
    /// The predicted runtime in seconds (bit-exact over the wire).
    pub predicted_secs: f64,
    /// End-to-end server-side latency in nanoseconds.
    pub total_ns: u64,
    /// Why the flight recorder retained the request:
    /// `normal`, `slow_threshold`, `slow_tail`, or `failed`.
    pub flight_class: String,
    /// Per-stage latency breakdown; durations sum to `total_ns`.
    pub stages: Vec<ProvenanceStage>,
}

/// One rolling window of [`WireSloStatus`]: good/bad counts and the
/// burn rate over that window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSloWindow {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests that met the objective inside the window.
    pub good: u64,
    /// Requests that missed the objective inside the window.
    pub bad: u64,
    /// `bad / (good + bad)` over the window (`0.0` when empty).
    pub error_rate: f64,
    /// `error_rate / (1 - target)` — how many times faster than allowed
    /// the error budget is burning; `1.0` means exactly on budget.
    pub burn_rate: f64,
}

/// Server SLO position, reported by the [`Message::SloStatus`] op: the
/// configured objective plus burn rates over every rolling window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSloStatus {
    /// Latency objective in nanoseconds a request must meet to count as
    /// good.
    pub latency_objective_ns: u64,
    /// Availability target in `(0, 1)`, e.g. `0.999`.
    pub target: f64,
    /// One entry per configured rolling window, shortest first.
    pub windows: Vec<WireSloWindow>,
}

/// Payload of [`Message::Explain`] — look up the provenance of one
/// served prediction by its trace id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainRequest {
    /// Trace id the client attached to (or received with) the request.
    pub trace_id: u64,
}

/// Payload of [`Message::SlowLog`] — fetch the slowest retained
/// requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowLogRequest {
    /// Maximum number of records to return, worst first.
    pub limit: u64,
}

/// A typed protocol message — the body of a [`Frame`](crate::Frame).
///
/// Requests (`Hello`, `Predict`, `PredictBatch`, `Metrics`, `Health`,
/// `Explain`, `SlowLog`, `SloStatus`) flow client → server; everything
/// else flows server → client, echoing the request's id.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake request (must be the first frame on a connection).
    Hello(HelloRequest),
    /// Handshake acknowledgement.
    HelloAck(HelloAck),
    /// Predict the runtime of one plan.
    Predict(Box<PlanNode>),
    /// Predict the runtimes of a batch of plans in one forward pass.
    PredictBatch(Vec<PlanNode>),
    /// Answer to [`Message::Predict`].
    PredictOk(WirePrediction),
    /// Answer to [`Message::PredictBatch`], in submission order.
    PredictBatchOk(Vec<WirePrediction>),
    /// Request the gateway + per-tenant metrics snapshot.
    Metrics,
    /// Answer to [`Message::Metrics`].
    MetricsOk(Box<GatewayMetrics>),
    /// Request the metrics in Prometheus text-exposition form.
    MetricsText,
    /// Answer to [`Message::MetricsText`]; the payload is the raw UTF-8
    /// exposition text (not JSON).
    MetricsTextOk(String),
    /// Liveness probe.
    Health,
    /// Answer to [`Message::Health`].
    HealthOk(HealthResponse),
    /// Request the provenance of one served prediction by trace id
    /// (protocol v2; v1 servers answer [`Message::Error`] with
    /// [`ErrorCode::BadRequest`]).
    Explain(ExplainRequest),
    /// Answer to [`Message::Explain`] when the trace is retained.
    ExplainOk(Box<ProvenanceRecord>),
    /// Request the slowest retained requests, worst first (protocol v2).
    SlowLog(SlowLogRequest),
    /// Answer to [`Message::SlowLog`].
    SlowLogOk(Vec<ProvenanceRecord>),
    /// Request the server's SLO burn-rate status (protocol v2).
    SloStatus,
    /// Answer to [`Message::SloStatus`].
    SloStatusOk(WireSloStatus),
    /// Structured failure answering any request.
    Error(ErrorResponse),
}

impl Message {
    /// The wire opcode of this message (byte 5 of the frame header).
    pub fn opcode(&self) -> u8 {
        match self {
            Message::Hello(_) => 0x01,
            Message::HelloAck(_) => 0x02,
            Message::Predict(_) => 0x10,
            Message::PredictBatch(_) => 0x11,
            Message::PredictOk(_) => 0x12,
            Message::PredictBatchOk(_) => 0x13,
            Message::Metrics => 0x20,
            Message::MetricsOk(_) => 0x21,
            Message::MetricsText => 0x22,
            Message::MetricsTextOk(_) => 0x23,
            Message::Health => 0x30,
            Message::HealthOk(_) => 0x31,
            Message::Explain(_) => 0x40,
            Message::ExplainOk(_) => 0x41,
            Message::SlowLog(_) => 0x42,
            Message::SlowLogOk(_) => 0x43,
            Message::SloStatus => 0x44,
            Message::SloStatusOk(_) => 0x45,
            Message::Error(_) => 0x3F,
        }
    }

    /// Human-readable operation name (for logs and error messages).
    pub fn op_name(&self) -> &'static str {
        match self {
            Message::Hello(_) => "Hello",
            Message::HelloAck(_) => "HelloAck",
            Message::Predict(_) => "Predict",
            Message::PredictBatch(_) => "PredictBatch",
            Message::PredictOk(_) => "PredictOk",
            Message::PredictBatchOk(_) => "PredictBatchOk",
            Message::Metrics => "Metrics",
            Message::MetricsOk(_) => "MetricsOk",
            Message::MetricsText => "MetricsText",
            Message::MetricsTextOk(_) => "MetricsTextOk",
            Message::Health => "Health",
            Message::HealthOk(_) => "HealthOk",
            Message::Explain(_) => "Explain",
            Message::ExplainOk(_) => "ExplainOk",
            Message::SlowLog(_) => "SlowLog",
            Message::SlowLogOk(_) => "SlowLogOk",
            Message::SloStatus => "SloStatus",
            Message::SloStatusOk(_) => "SloStatusOk",
            Message::Error(_) => "Error",
        }
    }

    /// Whether this message is a request (client → server).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::Hello(_)
                | Message::Predict(_)
                | Message::PredictBatch(_)
                | Message::Metrics
                | Message::MetricsText
                | Message::Health
                | Message::Explain(_)
                | Message::SlowLog(_)
                | Message::SloStatus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_unique() {
        let msgs = [
            Message::Hello(HelloRequest {
                protocol_version: 1,
                tenant: "t".into(),
            }),
            Message::HelloAck(HelloAck {
                protocol_version: 1,
                model_version: 1,
                tenant_quota: 1,
            }),
            Message::Predict(Box::new(test_plan())),
            Message::PredictBatch(vec![]),
            Message::PredictOk(WirePrediction {
                runtime_secs: 1.0,
                fingerprint: 0,
                cache_hit: false,
                server_latency_micros: 0,
                model_version: 1,
            }),
            Message::PredictBatchOk(vec![]),
            Message::Metrics,
            Message::MetricsOk(Box::new(empty_gateway_metrics())),
            Message::MetricsText,
            Message::MetricsTextOk(String::new()),
            Message::Health,
            Message::HealthOk(HealthResponse {
                healthy: true,
                model_version: 1,
            }),
            Message::Explain(ExplainRequest { trace_id: 1 }),
            Message::ExplainOk(Box::new(test_provenance())),
            Message::SlowLog(SlowLogRequest { limit: 10 }),
            Message::SlowLogOk(vec![]),
            Message::SloStatus,
            Message::SloStatusOk(WireSloStatus {
                latency_objective_ns: 0,
                target: 0.999,
                windows: vec![],
            }),
            Message::Error(ErrorResponse {
                code: ErrorCode::Internal,
                message: String::new(),
            }),
        ];
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            assert!(
                seen.insert(m.opcode()),
                "duplicate opcode for {}",
                m.op_name()
            );
        }
    }

    #[test]
    fn retryability_covers_backpressure_only() {
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::QuotaExceeded.is_retryable());
        assert!(!ErrorCode::BadRequest.is_retryable());
        assert!(!ErrorCode::Closed.is_retryable());
        assert!(!ErrorCode::Unauthenticated.is_retryable());
        assert!(!ErrorCode::Internal.is_retryable());
    }

    fn test_plan() -> PlanNode {
        PlanNode::leaf(
            zsdb_engine::PhysOperator::SeqScan {
                table: zsdb_catalog::TableId(0),
                predicates: vec![],
            },
            1.0,
            1.0,
            8.0,
        )
    }

    fn test_provenance() -> ProvenanceRecord {
        ProvenanceRecord {
            trace_id: 42,
            fingerprint: 0xFEED,
            model_name: "zero-shot-cost".into(),
            model_version: 3,
            cache_hit: true,
            home_shard: 1,
            executed_shard: 2,
            stolen: true,
            predicted_secs: 0.1 + 0.2, // not exactly representable
            total_ns: 1_500,
            flight_class: "slow_threshold".into(),
            stages: vec![
                ProvenanceStage {
                    name: "queue_wait".into(),
                    duration_ns: 500,
                },
                ProvenanceStage {
                    name: "forward".into(),
                    duration_ns: 1_000,
                },
            ],
        }
    }

    #[test]
    fn provenance_and_slo_payloads_round_trip_bit_exactly() {
        let record = test_provenance();
        let json = serde_json::to_string(&record).unwrap();
        let back: ProvenanceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
        assert_eq!(
            back.predicted_secs.to_bits(),
            record.predicted_secs.to_bits(),
            "predicted value crosses the wire bit-exactly"
        );
        assert_eq!(
            back.stages.iter().map(|s| s.duration_ns).sum::<u64>(),
            back.total_ns,
            "stage durations tile the end-to-end latency"
        );

        let status = WireSloStatus {
            latency_objective_ns: 50_000_000,
            target: 0.999,
            windows: vec![WireSloWindow {
                window_secs: 60,
                good: 990,
                bad: 10,
                error_rate: 0.01,
                burn_rate: 10.0,
            }],
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: WireSloStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }

    fn empty_gateway_metrics() -> GatewayMetrics {
        GatewayMetrics {
            connections_total: 0,
            connections_active: 0,
            server_total_requests: 0,
            server_rejected_requests: 0,
            server_throughput_qps: 0.0,
            server_latency_p50_ms: 0.0,
            server_latency_p95_ms: 0.0,
            server_latency_p99_ms: 0.0,
            model_version: 0,
            tenants: Vec::new(),
            uptime_seconds: 0.0,
            queue_depth: 0,
            server_latency_min_ms: 0.0,
            server_latency_max_ms: 0.0,
            window_occupancy: 0,
            window_capacity: 0,
        }
    }

    #[test]
    fn metrics_payloads_from_old_servers_still_deserialize() {
        // A server predating this build omits the fields added alongside
        // tracing; decoding must substitute defaults, not fail.
        let old_tenant = r#"{
            "tenant": "t", "admitted": 5, "completed": 4,
            "rejected_quota": 1, "rejected_shed": 0, "in_flight": 1,
            "quota": 8, "latency_p50_ms": 1.5, "latency_p95_ms": 2.0,
            "latency_p99_ms": 3.0
        }"#;
        let tenant: TenantMetrics = serde_json::from_str(old_tenant).unwrap();
        assert_eq!(tenant.latency_min_ms, 0.0);
        assert_eq!(tenant.latency_max_ms, 0.0);
        assert_eq!(tenant.latency_p99_ms, 3.0);

        let old_gateway = format!(
            r#"{{
                "connections_total": 2, "connections_active": 1,
                "server_total_requests": 10, "server_rejected_requests": 0,
                "server_throughput_qps": 100.0,
                "server_latency_p50_ms": 1.0, "server_latency_p95_ms": 2.0,
                "server_latency_p99_ms": 3.0, "model_version": 7,
                "tenants": [{old_tenant}]
            }}"#
        );
        let gateway: GatewayMetrics = serde_json::from_str(&old_gateway).unwrap();
        assert_eq!(gateway.uptime_seconds, 0.0);
        assert_eq!(gateway.queue_depth, 0);
        assert_eq!(gateway.window_capacity, 0);
        assert_eq!(gateway.server_total_requests, 10);
        assert_eq!(gateway.tenants.len(), 1);
    }

    #[test]
    fn metrics_payloads_round_trip_with_the_new_fields() {
        let mut metrics = empty_gateway_metrics();
        metrics.uptime_seconds = 12.5;
        metrics.queue_depth = 3;
        metrics.server_latency_min_ms = 0.25;
        metrics.server_latency_max_ms = 9.75;
        metrics.window_occupancy = 17;
        metrics.window_capacity = 64;
        let json = serde_json::to_string(&metrics).unwrap();
        let back: GatewayMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, metrics);
    }
}
