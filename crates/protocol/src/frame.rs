//! Frame codec: pure functions between [`Frame`]s and bytes, plus thin
//! `io::Read`/`io::Write` adapters.

use crate::error::ProtocolError;
use crate::message::{
    ErrorResponse, ExplainRequest, GatewayMetrics, HealthResponse, HelloAck, HelloRequest, Message,
    ProvenanceRecord, SlowLogRequest, WirePrediction, WireSloStatus,
};
use std::io::{Read, Write};
use zsdb_engine::PlanNode;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"ZSDB";

/// Highest protocol version this build speaks.  Version 2 adds the
/// [`FLAG_TRACE_ID`] header extension; frames without a trace id are
/// still emitted as version 1 so old peers interoperate.
pub const PROTOCOL_VERSION: u8 = 2;

/// Baseline protocol version: the fixed 20-byte header with zero flags
/// and no extensions.  Always accepted, and always emitted when a frame
/// carries no trace id.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Version-2 flag bit: an 8-byte little-endian trace id immediately
/// follows the fixed header, before the payload.
pub const FLAG_TRACE_ID: u16 = 0x0001;

/// Size of the trace-id header extension selected by [`FLAG_TRACE_ID`].
pub const TRACE_ID_EXT_LEN: usize = 8;

/// Fixed size of the frame header in bytes (extensions excluded).
pub const HEADER_LEN: usize = 20;

/// Upper bound on a frame's payload.  Anything larger is treated as
/// corruption or hostility and fails decoding with
/// [`ProtocolError::PayloadTooLarge`].
pub const MAX_PAYLOAD_LEN: u32 = 32 * 1024 * 1024;

/// One protocol frame: a request id plus a typed message, optionally
/// tagged with a request-scoped trace id.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen id echoed by the server's response, so many
    /// in-flight requests can share one connection.
    pub request_id: u64,
    /// Request-scoped trace id propagated end to end; 0 means untraced.
    /// Non-zero ids ride in a version-2 header extension
    /// ([`FLAG_TRACE_ID`]), so untraced frames stay version-1 compatible.
    pub trace_id: u64,
    /// The typed message body.
    pub message: Message,
}

impl Frame {
    /// Build an untraced frame (encoded as protocol version 1).
    pub fn new(request_id: u64, message: Message) -> Self {
        Frame {
            request_id,
            trace_id: 0,
            message,
        }
    }

    /// Build a frame carrying a trace id (encoded as protocol version 2
    /// when `trace_id` is non-zero).
    pub fn traced(request_id: u64, trace_id: u64, message: Message) -> Self {
        Frame {
            request_id,
            trace_id,
            message,
        }
    }
}

fn payload_json(message: &Message) -> Result<String, ProtocolError> {
    let encode = |r: Result<String, serde_json::Error>| {
        r.map_err(|e| ProtocolError::MalformedPayload {
            op: message.op_name(),
            detail: e.to_string(),
        })
    };
    Ok(match message {
        Message::Hello(m) => encode(serde_json::to_string(m))?,
        Message::HelloAck(m) => encode(serde_json::to_string(m))?,
        Message::Predict(plan) => encode(serde_json::to_string(plan.as_ref()))?,
        Message::PredictBatch(plans) => encode(serde_json::to_string(plans))?,
        Message::PredictOk(m) => encode(serde_json::to_string(m))?,
        Message::PredictBatchOk(m) => encode(serde_json::to_string(m))?,
        Message::Metrics | Message::MetricsText | Message::Health | Message::SloStatus => {
            String::new()
        }
        Message::MetricsOk(m) => encode(serde_json::to_string(m.as_ref()))?,
        // Raw Prometheus exposition text, not JSON.
        Message::MetricsTextOk(text) => text.clone(),
        Message::HealthOk(m) => encode(serde_json::to_string(m))?,
        Message::Explain(m) => encode(serde_json::to_string(m))?,
        Message::ExplainOk(m) => encode(serde_json::to_string(m.as_ref()))?,
        Message::SlowLog(m) => encode(serde_json::to_string(m))?,
        Message::SlowLogOk(m) => encode(serde_json::to_string(m))?,
        Message::SloStatusOk(m) => encode(serde_json::to_string(m))?,
        Message::Error(m) => encode(serde_json::to_string(m))?,
    })
}

fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Message, ProtocolError> {
    fn parse<T: serde::Deserialize>(op: &'static str, payload: &[u8]) -> Result<T, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|e| ProtocolError::MalformedPayload {
            op,
            detail: format!("payload is not UTF-8: {e}"),
        })?;
        serde_json::from_str(text).map_err(|e| ProtocolError::MalformedPayload {
            op,
            detail: e.to_string(),
        })
    }
    Ok(match opcode {
        0x01 => Message::Hello(parse::<HelloRequest>("Hello", payload)?),
        0x02 => Message::HelloAck(parse::<HelloAck>("HelloAck", payload)?),
        0x10 => Message::Predict(Box::new(parse::<PlanNode>("Predict", payload)?)),
        0x11 => Message::PredictBatch(parse::<Vec<PlanNode>>("PredictBatch", payload)?),
        0x12 => Message::PredictOk(parse::<WirePrediction>("PredictOk", payload)?),
        0x13 => Message::PredictBatchOk(parse::<Vec<WirePrediction>>("PredictBatchOk", payload)?),
        0x20 => Message::Metrics,
        0x21 => Message::MetricsOk(Box::new(parse::<GatewayMetrics>("MetricsOk", payload)?)),
        0x22 => Message::MetricsText,
        0x23 => Message::MetricsTextOk(
            std::str::from_utf8(payload)
                .map_err(|e| ProtocolError::MalformedPayload {
                    op: "MetricsTextOk",
                    detail: format!("payload is not UTF-8: {e}"),
                })?
                .to_string(),
        ),
        0x30 => Message::Health,
        0x31 => Message::HealthOk(parse::<HealthResponse>("HealthOk", payload)?),
        0x40 => Message::Explain(parse::<ExplainRequest>("Explain", payload)?),
        0x41 => Message::ExplainOk(Box::new(parse::<ProvenanceRecord>("ExplainOk", payload)?)),
        0x42 => Message::SlowLog(parse::<SlowLogRequest>("SlowLog", payload)?),
        0x43 => Message::SlowLogOk(parse::<Vec<ProvenanceRecord>>("SlowLogOk", payload)?),
        0x44 => Message::SloStatus,
        0x45 => Message::SloStatusOk(parse::<WireSloStatus>("SloStatusOk", payload)?),
        0x3F => Message::Error(parse::<ErrorResponse>("Error", payload)?),
        other => return Err(ProtocolError::UnknownOpcode(other)),
    })
}

/// Encode one frame into bytes (header + JSON payload).
///
/// Fails only when the payload would exceed [`MAX_PAYLOAD_LEN`] — e.g. an
/// absurdly large `PredictBatch`.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, ProtocolError> {
    let payload = payload_json(&frame.message)?;
    let payload = payload.as_bytes();
    if payload.len() as u64 > MAX_PAYLOAD_LEN as u64 {
        return Err(ProtocolError::PayloadTooLarge {
            declared: payload.len() as u32,
            limit: MAX_PAYLOAD_LEN,
        });
    }
    // Untraced frames stay on the baseline version so version-1 peers
    // keep decoding them; only a trace id needs the v2 extension.
    let (version, flags) = if frame.trace_id == 0 {
        (MIN_PROTOCOL_VERSION, 0u16)
    } else {
        (PROTOCOL_VERSION, FLAG_TRACE_ID)
    };
    let ext_len = if flags & FLAG_TRACE_ID != 0 {
        TRACE_ID_EXT_LEN
    } else {
        0
    };
    let mut out = Vec::with_capacity(HEADER_LEN + ext_len + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(frame.message.opcode());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    if flags & FLAG_TRACE_ID != 0 {
        out.extend_from_slice(&frame.trace_id.to_le_bytes());
    }
    out.extend_from_slice(payload);
    Ok(out)
}

/// Bytes of header extension selected by a frame's version + flags.
fn header_ext_len(version: u8, flags: u16) -> usize {
    if version >= 2 && flags & FLAG_TRACE_ID != 0 {
        TRACE_ID_EXT_LEN
    } else {
        0
    }
}

/// Decode the first frame of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a complete frame starts the
/// buffer (`consumed` bytes of it), `Ok(None)` when the buffer holds only
/// a prefix of a frame (read more bytes and retry), and an error when the
/// bytes can never become a valid frame.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        // Reject garbage as early as its first bytes arrive.
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            let mut found = [0u8; 4];
            found[..buf.len().min(4)].copy_from_slice(&buf[..buf.len().min(4)]);
            return Err(ProtocolError::BadMagic(found));
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(ProtocolError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    let version = buf[4];
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let opcode = buf[5];
    let flags = u16::from_le_bytes([buf[6], buf[7]]);
    let known_flags = if version >= 2 { FLAG_TRACE_ID } else { 0 };
    if flags & !known_flags != 0 {
        return Err(ProtocolError::NonZeroFlags(flags));
    }
    let ext_len = header_ext_len(version, flags);
    let request_id = u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice"));
    let payload_len = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte slice"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(ProtocolError::PayloadTooLarge {
            declared: payload_len,
            limit: MAX_PAYLOAD_LEN,
        });
    }
    let total = HEADER_LEN + ext_len + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let trace_id = if ext_len == TRACE_ID_EXT_LEN {
        u64::from_le_bytes(
            buf[HEADER_LEN..HEADER_LEN + TRACE_ID_EXT_LEN]
                .try_into()
                .expect("8-byte slice"),
        )
    } else {
        0
    };
    let message = decode_payload(opcode, &buf[HEADER_LEN + ext_len..total])?;
    Ok(Some((Frame::traced(request_id, trace_id, message), total)))
}

/// Read one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary and
/// [`ProtocolError::Truncated`] when the stream ends mid-frame.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Frame>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(ProtocolError::Truncated)
            };
        }
        filled += n;
    }
    // Validate the header alone first (payload length is at a fixed
    // offset), then read exactly the payload.
    match decode_frame(&header)? {
        Some((frame, consumed)) => {
            debug_assert_eq!(consumed, HEADER_LEN, "empty-payload frame");
            Ok(Some(frame))
        }
        None => {
            let ext_len = header_ext_len(header[4], u16::from_le_bytes([header[6], header[7]]));
            let payload_len =
                u32::from_le_bytes(header[16..20].try_into().expect("4-byte slice")) as usize;
            let mut buf = Vec::with_capacity(HEADER_LEN + ext_len + payload_len);
            buf.extend_from_slice(&header);
            buf.resize(HEADER_LEN + ext_len + payload_len, 0);
            reader
                .read_exact(&mut buf[HEADER_LEN..])
                .map_err(|e| match e.kind() {
                    std::io::ErrorKind::UnexpectedEof => ProtocolError::Truncated,
                    _ => ProtocolError::Io(e),
                })?;
            match decode_frame(&buf)? {
                Some((frame, _)) => Ok(Some(frame)),
                None => unreachable!("header + full payload must decode"),
            }
        }
    }
}

/// Encode and write one frame to a blocking stream (no flush — callers
/// batching several frames flush once at the end).
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), ProtocolError> {
    let bytes = encode_frame(frame)?;
    writer.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ErrorCode;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello(HelloRequest {
                protocol_version: PROTOCOL_VERSION,
                tenant: "analytics".into(),
            }),
            Message::HelloAck(HelloAck {
                protocol_version: PROTOCOL_VERSION,
                model_version: 7,
                tenant_quota: 256,
            }),
            Message::Metrics,
            Message::Health,
            Message::HealthOk(HealthResponse {
                healthy: true,
                model_version: 7,
            }),
            Message::PredictOk(WirePrediction {
                runtime_secs: 0.1 + 0.2, // not exactly representable
                fingerprint: u64::MAX,
                cache_hit: true,
                server_latency_micros: 12345,
                model_version: 7,
            }),
            Message::PredictBatchOk(vec![
                WirePrediction {
                    runtime_secs: f64::MIN_POSITIVE,
                    fingerprint: 0,
                    cache_hit: false,
                    server_latency_micros: 0,
                    model_version: 1,
                },
                WirePrediction {
                    runtime_secs: 1e300,
                    fingerprint: 42,
                    cache_hit: true,
                    server_latency_micros: 9,
                    model_version: 2,
                },
            ]),
            Message::Explain(ExplainRequest { trace_id: 0xBEEF }),
            Message::ExplainOk(Box::new(ProvenanceRecord {
                trace_id: 0xBEEF,
                fingerprint: 77,
                model_name: "zero-shot-cost".into(),
                model_version: 7,
                cache_hit: false,
                home_shard: 0,
                executed_shard: 3,
                stolen: true,
                predicted_secs: 0.1 + 0.2,
                total_ns: 2_000,
                flight_class: "slow_tail".into(),
                stages: vec![crate::message::ProvenanceStage {
                    name: "forward".into(),
                    duration_ns: 2_000,
                }],
            })),
            Message::SlowLog(SlowLogRequest { limit: 16 }),
            Message::SlowLogOk(vec![]),
            Message::SloStatus,
            Message::SloStatusOk(WireSloStatus {
                latency_objective_ns: 50_000_000,
                target: 0.999,
                windows: vec![crate::message::WireSloWindow {
                    window_secs: 3600,
                    good: 100,
                    bad: 1,
                    error_rate: 1.0 / 101.0,
                    burn_rate: 9.9,
                }],
            }),
            Message::Error(ErrorResponse {
                code: ErrorCode::Overloaded,
                message: "queue full — retry with backoff".into(),
            }),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for (i, message) in sample_messages().into_iter().enumerate() {
            let frame = Frame::new(i as u64 * 1_000_003, message);
            let bytes = encode_frame(&frame).unwrap();
            let (back, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
            assert_eq!(consumed, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn f64_predictions_round_trip_bit_exactly() {
        for bits in [
            0x3FB999999999999Au64, // 0.1
            0x0010000000000000,    // smallest normal
            0x000FFFFFFFFFFFFF,    // largest subnormal
            0x7FEFFFFFFFFFFFFF,    // f64::MAX
            0x3FF0000000000001,    // 1.0 + ulp
        ] {
            let value = f64::from_bits(bits);
            let frame = Frame::new(
                1,
                Message::PredictOk(WirePrediction {
                    runtime_secs: value,
                    fingerprint: bits,
                    cache_hit: false,
                    server_latency_micros: 1,
                    model_version: 1,
                }),
            );
            let bytes = encode_frame(&frame).unwrap();
            let (back, _) = decode_frame(&bytes).unwrap().unwrap();
            match back.message {
                Message::PredictOk(p) => assert_eq!(p.runtime_secs.to_bits(), bits),
                other => panic!("unexpected message {}", other.op_name()),
            }
        }
    }

    #[test]
    fn partial_buffers_ask_for_more_bytes() {
        let frame = Frame::new(
            9,
            Message::Hello(HelloRequest {
                protocol_version: PROTOCOL_VERSION,
                tenant: "t".into(),
            }),
        );
        let bytes = encode_frame(&frame).unwrap();
        for cut in 0..bytes.len() {
            let r = decode_frame(&bytes[..cut]).unwrap();
            assert!(r.is_none(), "prefix of {cut} bytes must be incomplete");
        }
        assert!(decode_frame(&bytes).unwrap().is_some());
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let frames: Vec<Frame> = sample_messages()
            .into_iter()
            .enumerate()
            .map(|(i, m)| Frame::new(i as u64, m))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f).unwrap());
        }
        let mut offset = 0;
        for expected in &frames {
            let (frame, used) = decode_frame(&stream[offset..]).unwrap().unwrap();
            assert_eq!(&frame, expected);
            offset += used;
        }
        assert_eq!(offset, stream.len());
    }

    #[test]
    fn garbage_is_rejected_early() {
        assert!(matches!(
            decode_frame(b"GET / HTTP/1.1\r\n"),
            Err(ProtocolError::BadMagic(_))
        ));
        // Even a two-byte prefix that can't extend to the magic fails.
        assert!(matches!(
            decode_frame(b"GE"),
            Err(ProtocolError::BadMagic(_))
        ));
        // A two-byte prefix of the magic is just incomplete.
        assert!(decode_frame(b"ZS").unwrap().is_none());
    }

    #[test]
    fn wrong_version_flags_opcode_and_oversize_are_rejected() {
        let frame = Frame::new(1, Message::Health);
        let bytes = encode_frame(&frame).unwrap();

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(ProtocolError::UnsupportedVersion(99))
        ));

        let mut wrong_flags = bytes.clone();
        wrong_flags[6] = 1;
        assert!(matches!(
            decode_frame(&wrong_flags),
            Err(ProtocolError::NonZeroFlags(1))
        ));

        let mut wrong_opcode = bytes.clone();
        wrong_opcode[5] = 0x7E;
        assert!(matches!(
            decode_frame(&wrong_opcode),
            Err(ProtocolError::UnknownOpcode(0x7E))
        ));

        let mut oversize = bytes;
        oversize[16..20].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversize),
            Err(ProtocolError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn untraced_frames_stay_on_the_baseline_version() {
        // Compatibility contract: a frame without a trace id must be
        // byte-identical to what a version-1 build emits, so old peers
        // keep decoding everything an untracing client sends.
        let bytes = encode_frame(&Frame::new(5, Message::Health)).unwrap();
        assert_eq!(bytes[4], MIN_PROTOCOL_VERSION);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0);
        assert_eq!(bytes.len(), HEADER_LEN);
    }

    #[test]
    fn traced_frames_round_trip_via_the_v2_extension() {
        let frame = Frame::traced(
            42,
            0xDEAD_BEEF_CAFE_F00D,
            Message::Hello(HelloRequest {
                protocol_version: PROTOCOL_VERSION,
                tenant: "t".into(),
            }),
        );
        let bytes = encode_frame(&frame).unwrap();
        assert_eq!(bytes[4], PROTOCOL_VERSION);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), FLAG_TRACE_ID);
        let (back, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, frame);
        assert_eq!(back.trace_id, 0xDEAD_BEEF_CAFE_F00D);

        // Every prefix is incomplete, including cuts inside the trace-id
        // extension.
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).unwrap().is_none());
        }
    }

    #[test]
    fn traced_empty_payload_frames_survive_the_streaming_reader() {
        // MetricsText has an empty payload; with a trace id the frame is
        // header + extension only, which exercises read_frame's
        // extension-aware second read.
        let frame = Frame::traced(7, 99, Message::MetricsText);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), frame);
    }

    #[test]
    fn trace_flag_on_a_v1_frame_is_rejected() {
        let mut bytes = encode_frame(&Frame::new(1, Message::Health)).unwrap();
        assert_eq!(bytes[4], MIN_PROTOCOL_VERSION);
        bytes[6] = FLAG_TRACE_ID as u8; // v1 knows no flags at all
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtocolError::NonZeroFlags(_))
        ));
    }

    #[test]
    fn unknown_flag_bits_on_a_v2_frame_are_rejected() {
        let mut bytes = encode_frame(&Frame::traced(1, 9, Message::Health)).unwrap();
        assert_eq!(bytes[4], PROTOCOL_VERSION);
        bytes[6] |= 0x02; // undefined bit alongside the trace flag
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtocolError::NonZeroFlags(_))
        ));
    }

    #[test]
    fn metrics_text_payload_is_raw_utf8_not_json() {
        let text = "# TYPE serve_requests_total counter\nserve_requests_total 3\n";
        let frame = Frame::new(3, Message::MetricsTextOk(text.to_string()));
        let bytes = encode_frame(&frame).unwrap();
        assert_eq!(&bytes[HEADER_LEN..], text.as_bytes());
        let (back, _) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn malformed_payload_names_the_op() {
        let frame = Frame::new(
            1,
            Message::HealthOk(HealthResponse {
                healthy: true,
                model_version: 1,
            }),
        );
        let mut bytes = encode_frame(&frame).unwrap();
        // Corrupt the JSON payload.
        let last = bytes.len() - 1;
        bytes[last] = b'!';
        match decode_frame(&bytes) {
            Err(ProtocolError::MalformedPayload { op, .. }) => assert_eq!(op, "HealthOk"),
            other => panic!("expected MalformedPayload, got {other:?}"),
        }
    }

    #[test]
    fn io_round_trip_and_clean_eof() {
        let frames: Vec<Frame> = sample_messages()
            .into_iter()
            .enumerate()
            .map(|(i, m)| Frame::new(i as u64, m))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream.clone());
        for expected in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap().unwrap(), expected);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        // A stream cut mid-frame reports Truncated, not clean EOF.
        let cut = stream.len() - 3;
        let mut cursor = std::io::Cursor::new(&stream[..cut]);
        let mut result = Ok(Some(Frame::new(0, Message::Health)));
        for _ in 0..frames.len() {
            result = read_frame(&mut cursor);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(ProtocolError::Truncated)));
    }
}
