//! Decode/encode failures of the framed protocol.

use std::fmt;

/// Everything that can go wrong while encoding or decoding a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The first four bytes are not the `ZSDB` magic — the peer is not
    /// speaking this protocol.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not supported by this build.
    UnsupportedVersion(u8),
    /// The reserved flags field carried a non-zero value.
    NonZeroFlags(u16),
    /// The opcode byte does not name a known operation.
    UnknownOpcode(u8),
    /// The declared payload length exceeds
    /// [`MAX_PAYLOAD_LEN`](crate::MAX_PAYLOAD_LEN) — either corruption or
    /// a hostile peer; the connection should be dropped.
    PayloadTooLarge {
        /// Declared payload length.
        declared: u32,
        /// The enforced limit.
        limit: u32,
    },
    /// The payload bytes are not valid UTF-8 JSON for the opcode's
    /// payload type.
    MalformedPayload {
        /// Human-readable opcode name.
        op: &'static str,
        /// What the payload parser reported.
        detail: String,
    },
    /// The stream ended in the middle of a frame (header or payload).
    Truncated,
    /// I/O failure of the underlying stream.
    Io(std::io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => {
                write!(f, "bad frame magic {m:?} (expected \"ZSDB\")")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {})",
                    crate::PROTOCOL_VERSION
                )
            }
            ProtocolError::NonZeroFlags(flags) => {
                write!(f, "reserved flags field is non-zero ({flags:#06x})")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::PayloadTooLarge { declared, limit } => {
                write!(
                    f,
                    "payload of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            ProtocolError::MalformedPayload { op, detail } => {
                write!(f, "malformed {op} payload: {detail}")
            }
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProtocolError::BadMagic(*b"HTTP")
            .to_string()
            .contains("ZSDB"));
        assert!(ProtocolError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(ProtocolError::UnknownOpcode(0xAB)
            .to_string()
            .contains("0xab"));
        assert!(ProtocolError::PayloadTooLarge {
            declared: 10,
            limit: 5
        }
        .to_string()
        .contains("limit"));
        assert!(ProtocolError::Truncated.to_string().contains("mid-frame"));
        let io: ProtocolError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
