//! Fuzz-ish property suite: `decode(encode(x)) == x` for arbitrary
//! frames, including frames carrying randomly generated plan trees, and
//! streaming decode over arbitrarily chunked concatenations.

use proptest::prelude::*;
use zsdb_catalog::{ColumnId, ColumnRef, TableId, Value};
use zsdb_engine::{PhysOperator, PlanNode};
use zsdb_protocol::{
    decode_frame, encode_frame, ErrorCode, ErrorResponse, Frame, GatewayMetrics, HealthResponse,
    HelloAck, HelloRequest, Message, TenantMetrics, WirePrediction, PROTOCOL_VERSION,
};
use zsdb_query::{Aggregate, CmpOp, Predicate};

/// Deterministic SplitMix64 — a self-contained value generator so one
/// sampled `u64` seed expands into an arbitrarily complex frame.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A finite, non-NaN f64 spanning many magnitudes (including exact
    /// bit-patterns that stress shortest-round-trip formatting).
    fn finite_f64(&mut self) -> f64 {
        loop {
            let v = f64::from_bits(self.next());
            if v.is_finite() {
                return v;
            }
        }
    }

    fn column(&mut self) -> ColumnRef {
        ColumnRef::new(
            TableId(self.below(8) as u32),
            ColumnId(self.below(16) as u32),
        )
    }

    fn predicate(&mut self) -> Predicate {
        let op = CmpOp::ALL[self.below(CmpOp::ALL.len() as u64) as usize];
        let value = match self.below(5) {
            0 => Value::Null,
            1 => Value::Int(self.next() as i64),
            2 => Value::Float(self.finite_f64()),
            3 => Value::Cat(self.next() as u32),
            _ => Value::Bool(self.next().is_multiple_of(2)),
        };
        Predicate::new(self.column(), op, value)
    }

    /// A random plan tree of bounded depth with every operator kind
    /// reachable.
    fn plan(&mut self, depth: u64) -> PlanNode {
        let leaf_only = depth == 0;
        let choice = if leaf_only {
            self.below(2)
        } else {
            self.below(5)
        };
        let (op, children) = match choice {
            0 => (
                PhysOperator::SeqScan {
                    table: TableId(self.below(8) as u32),
                    predicates: (0..self.below(3)).map(|_| self.predicate()).collect(),
                },
                vec![],
            ),
            1 => (
                PhysOperator::IndexScan {
                    table: TableId(self.below(8) as u32),
                    index_column: self.column(),
                    lo: (self.next().is_multiple_of(2)).then(|| self.finite_f64()),
                    hi: (self.next().is_multiple_of(2)).then(|| self.finite_f64()),
                    residual: (0..self.below(2)).map(|_| self.predicate()).collect(),
                },
                vec![],
            ),
            2 => (
                PhysOperator::HashJoin {
                    build_key: self.column(),
                    probe_key: self.column(),
                },
                vec![self.plan(depth - 1), self.plan(depth - 1)],
            ),
            3 => (
                PhysOperator::NestedLoopJoin {
                    outer_key: self.column(),
                    inner_key: self.column(),
                },
                vec![self.plan(depth - 1), self.plan(depth - 1)],
            ),
            _ => (
                PhysOperator::Aggregate {
                    aggregates: vec![Aggregate::count_star()],
                },
                vec![self.plan(depth - 1)],
            ),
        };
        PlanNode {
            op,
            children,
            est_cardinality: self.finite_f64().abs(),
            est_cost: self.finite_f64().abs(),
            output_width: self.below(512) as f64,
        }
    }

    fn prediction(&mut self) -> WirePrediction {
        WirePrediction {
            runtime_secs: self.finite_f64(),
            fingerprint: self.next(),
            cache_hit: self.next().is_multiple_of(2),
            server_latency_micros: self.next(),
            model_version: self.next() as u32,
        }
    }

    fn tenant_name(&mut self) -> String {
        // Exercise escaping: quotes, backslashes, non-ASCII, control chars.
        let alphabet = ['a', 'Z', '9', '-', '_', '"', '\\', 'é', '☃', '\n'];
        (0..self.below(12))
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize])
            .collect()
    }

    fn message(&mut self) -> Message {
        match self.below(13) {
            0 => Message::Hello(HelloRequest {
                protocol_version: PROTOCOL_VERSION,
                tenant: self.tenant_name(),
            }),
            1 => Message::HelloAck(HelloAck {
                protocol_version: PROTOCOL_VERSION,
                model_version: self.next() as u32,
                tenant_quota: self.next(),
            }),
            2 => Message::Predict(Box::new(self.plan(3))),
            3 => Message::PredictBatch((0..self.below(4)).map(|_| self.plan(2)).collect()),
            4 => Message::PredictOk(self.prediction()),
            5 => Message::PredictBatchOk((0..self.below(5)).map(|_| self.prediction()).collect()),
            6 => Message::Metrics,
            7 => Message::MetricsOk(Box::new(GatewayMetrics {
                connections_total: self.next(),
                connections_active: self.next(),
                server_total_requests: self.next(),
                server_rejected_requests: self.next(),
                server_throughput_qps: self.finite_f64().abs(),
                server_latency_p50_ms: self.finite_f64().abs(),
                server_latency_p95_ms: self.finite_f64().abs(),
                server_latency_p99_ms: self.finite_f64().abs(),
                model_version: self.next() as u32,
                tenants: (0..self.below(3))
                    .map(|_| TenantMetrics {
                        tenant: self.tenant_name(),
                        admitted: self.next(),
                        completed: self.next(),
                        rejected_quota: self.next(),
                        rejected_shed: self.next(),
                        in_flight: self.next(),
                        quota: self.next(),
                        latency_p50_ms: self.finite_f64().abs(),
                        latency_p95_ms: self.finite_f64().abs(),
                        latency_p99_ms: self.finite_f64().abs(),
                        latency_min_ms: self.finite_f64().abs(),
                        latency_max_ms: self.finite_f64().abs(),
                    })
                    .collect(),
                uptime_seconds: self.finite_f64().abs(),
                queue_depth: self.next(),
                server_latency_min_ms: self.finite_f64().abs(),
                server_latency_max_ms: self.finite_f64().abs(),
                window_occupancy: self.next(),
                window_capacity: self.next(),
            })),
            11 => Message::MetricsText,
            12 => Message::MetricsTextOk(
                (0..self.below(64))
                    .map(|_| ['#', ' ', 'a', '_', '0', '\n', '"', 'é'][self.below(8) as usize])
                    .collect(),
            ),
            8 => Message::Health,
            9 => Message::HealthOk(HealthResponse {
                healthy: self.next().is_multiple_of(2),
                model_version: self.next() as u32,
            }),
            _ => Message::Error(ErrorResponse {
                code: [
                    ErrorCode::Unauthenticated,
                    ErrorCode::BadRequest,
                    ErrorCode::QuotaExceeded,
                    ErrorCode::Overloaded,
                    ErrorCode::Closed,
                    ErrorCode::Internal,
                ][self.below(6) as usize],
                message: self.tenant_name(),
            }),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_encode_is_identity(
        seed in 0u64..u64::MAX,
        request_id in 0u64..u64::MAX,
        trace_id in 0u64..u64::MAX,
    ) {
        // trace_id 0 exercises the baseline v1 encoding, everything else
        // the v2 trace-id extension.
        let trace_id = if seed.is_multiple_of(2) { 0 } else { trace_id };
        let frame = Frame::traced(request_id, trace_id, Gen(seed).message());
        let bytes = encode_frame(&frame).expect("encode");
        let decoded = decode_frame(&bytes).expect("decode");
        let (back, consumed) = decoded.expect("complete frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn streaming_decode_survives_arbitrary_chunking(
        seed in 0u64..u64::MAX,
        chunk in 1usize..97,
    ) {
        // Several frames concatenated, fed to the decoder `chunk` bytes at
        // a time: each frame must come out exactly once, in order, and no
        // prefix may decode early.
        let mut gen = Gen(seed);
        let frames: Vec<Frame> = (0..4).map(|i| Frame::new(i, gen.message())).collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f).expect("encode"));
        }
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.extend_from_slice(piece);
            while let Some((frame, used)) = decode_frame(&buf).expect("decode") {
                buf.drain(..used);
                decoded.push(frame);
            }
        }
        prop_assert!(buf.is_empty(), "no residual bytes");
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn truncation_never_panics_or_misdecodes(seed in 0u64..u64::MAX, cut_frac in 0.0f64..1.0) {
        let frame = Frame::new(7, Gen(seed).message());
        let bytes = encode_frame(&frame).expect("encode");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // A strict prefix either reports "incomplete" or never a frame.
        if cut < bytes.len() {
            if let Some((decoded, used)) = decode_frame(&bytes[..cut]).expect("prefix decode") {
                // Only possible if an empty-payload frame fits the prefix
                // exactly — and then it must be OUR frame's header, which
                // means the frame was empty-payload and cut == len.
                prop_assert_eq!(used, cut);
                prop_assert_eq!(decoded, frame);
            }
        }
    }
}
