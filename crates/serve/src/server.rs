//! Concurrent prediction server: a `std::thread` worker pool over a
//! bounded MPSC request queue.
//!
//! Design notes:
//!
//! * **Backpressure, not unbounded queueing** — requests enter through a
//!   [`std::sync::mpsc::sync_channel`] with a fixed capacity.
//!   [`PredictionServer::submit`] blocks the producer when the queue is
//!   full; [`PredictionServer::try_submit`] sheds load immediately with
//!   [`ServeError::Overloaded`].
//! * **Shared-read model** — the trained model is behind an `Arc` and only
//!   ever read; each worker owns a private [`InferenceScratch`], so
//!   steady-state inference takes no locks and performs no allocation.
//! * **Deterministic results** — workers featurize with the model's own
//!   [`FeaturizerConfig`](zsdb_core::FeaturizerConfig) and predict with
//!   the same floating-point operations as the single-threaded path, so a
//!   served prediction is bit-identical to
//!   `model.predict(featurize_plan(...))`.
//! * **Batched submission** — [`PredictionServer::submit_batch`] enqueues
//!   a batch as one queue entry per [`ServerConfig::max_batch_size`]
//!   chunk; a worker featurizes each chunk in one cache-assisted sweep
//!   and answers it with a single batched forward pass
//!   ([`zsdb_core::batch`]), amortising per-request overhead while
//!   staying bit-identical to per-request submission — and since every
//!   chunk occupies a bounded-queue slot, `queue_capacity` keeps
//!   bounding in-flight work for batches too.

use crate::cache::{CacheStats, FeatureCache};
use crate::error::ServeError;
use crate::metrics::{
    MetricsSnapshot, ServeMetrics, STAGE_CACHE_LOOKUP, STAGE_FEATURIZE, STAGE_FORWARD,
    STAGE_QUEUE_WAIT,
};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zsdb_catalog::SchemaCatalog;
use zsdb_core::features::featurize_plan;
use zsdb_core::fingerprint::plan_fingerprint;
use zsdb_core::model::InferenceScratch;
use zsdb_core::train::TrainedModel;
use zsdb_engine::PlanNode;
use zsdb_obs::{ActiveTrace, Tracer};

/// Finished traces (and standalone events) the server's [`Tracer`] keeps
/// per recording thread.
const TRACE_RING: usize = 256;

/// Tunables of a [`PredictionServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Capacity of the bounded request queue (backpressure threshold).
    pub queue_capacity: usize,
    /// Capacity of the feature cache (entries; 0 disables caching).
    pub cache_capacity: usize,
    /// Largest batch answered as one unit: `submit_batch` splits bigger
    /// submissions into chunks of at most this many plans, each occupying
    /// one bounded-queue slot — so `queue_capacity` bounds in-flight work
    /// for batches too (within a factor of `max_batch_size`), instead of
    /// a single huge batch bypassing backpressure.
    pub max_batch_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            max_batch_size: 256,
        }
    }
}

/// One answered prediction request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted runtime in seconds.
    pub runtime_secs: f64,
    /// Structural fingerprint of the request plan.
    pub fingerprint: u64,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Enqueue-to-response latency.
    pub latency: Duration,
    /// Version of the model that answered (changes across hot-swaps).
    pub model_version: u32,
}

/// A versioned, immutable served model — the unit of an atomic hot-swap.
///
/// Workers pin the current `Arc<ServedModel>` per dequeued job, so a
/// concurrent [`PredictionServer::swap_model`] never changes the weights
/// under an in-flight request or batch: work that already started
/// finishes on the old version, work dequeued after the swap runs on the
/// new one.
#[derive(Debug)]
pub struct ServedModel {
    /// Registry version of this model (1 for a model served directly
    /// without a registry).
    pub version: u32,
    /// The model itself.
    pub model: TrainedModel,
}

/// Claim ticket for an in-flight request; redeem with
/// [`PredictionTicket::wait`].
#[derive(Debug)]
pub struct PredictionTicket {
    rx: mpsc::Receiver<(Prediction, Option<ActiveTrace>)>,
}

impl PredictionTicket {
    /// Block until the prediction is ready.  Fails with
    /// [`ServeError::Closed`] if the server shut down before answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.wait_traced().map(|(prediction, _)| prediction)
    }

    /// Like [`PredictionTicket::wait`], but also hands back the request's
    /// in-flight trace (when the request was submitted with one) so the
    /// caller can mark its own final stages and finish it.
    pub fn wait_traced(self) -> Result<(Prediction, Option<ActiveTrace>), ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// Claim ticket for an in-flight batch request; redeem with
/// [`BatchPredictionTicket::wait`].
///
/// A submission larger than
/// [`max_batch_size`](ServerConfig::max_batch_size) is answered in
/// several chunks (possibly by different workers); the ticket stitches
/// them back together in submission order.
#[derive(Debug)]
pub struct BatchPredictionTicket {
    parts: Vec<mpsc::Receiver<(Vec<Prediction>, Option<ActiveTrace>)>>,
}

impl BatchPredictionTicket {
    /// Block until all predictions of the batch are ready and return them
    /// in submission order.  Fails with [`ServeError::Closed`] if the
    /// server shut down before answering.
    pub fn wait(self) -> Result<Vec<Prediction>, ServeError> {
        self.wait_traced().map(|(predictions, _)| predictions)
    }

    /// Like [`BatchPredictionTicket::wait`], but also hands back the
    /// batch's in-flight trace.  A traced batch submission attaches its
    /// trace to the first chunk; the returned trace is the first one any
    /// chunk carried.
    pub fn wait_traced(self) -> Result<(Vec<Prediction>, Option<ActiveTrace>), ServeError> {
        let mut predictions = Vec::new();
        let mut trace = None;
        for part in self.parts {
            let (chunk, chunk_trace) = part.recv().map_err(|_| ServeError::Closed)?;
            predictions.extend(chunk);
            trace = trace.or(chunk_trace);
        }
        Ok((predictions, trace))
    }
}

/// A request that [`PredictionServer::try_submit`] could not enqueue: the
/// plan comes back (boxed, to keep the `Err` variant small) together with
/// the rejection reason so the caller can retry or shed it.
#[derive(Debug)]
pub struct RejectedRequest {
    /// The plan that was not enqueued.
    pub plan: Box<PlanNode>,
    /// Why it was rejected ([`ServeError::Overloaded`] or
    /// [`ServeError::Closed`]).
    pub reason: ServeError,
}

impl RejectedRequest {
    pub(crate) fn new(plan: PlanNode, reason: ServeError) -> Self {
        RejectedRequest {
            plan: Box::new(plan),
            reason,
        }
    }
}

impl std::fmt::Display for RejectedRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request rejected: {}", self.reason)
    }
}

impl std::error::Error for RejectedRequest {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.reason)
    }
}

/// A batch that [`PredictionServer::try_submit_batch`] could not fully
/// enqueue.
///
/// Chunked admission cannot be undone once a chunk is in the queue, so a
/// partial failure is reported honestly: [`RejectedBatch::plans`] holds
/// the unsent remainder (in submission order, for retry) and
/// [`RejectedBatch::answered`] the ticket for chunks that *were*
/// admitted before the queue filled up — `None` when nothing was.
pub struct RejectedBatch {
    /// The plans that were not enqueued, in submission order.
    pub plans: Vec<PlanNode>,
    /// Why admission stopped ([`ServeError::Overloaded`] or
    /// [`ServeError::Closed`]).
    pub reason: ServeError,
    /// Ticket for the prefix of the batch that was admitted before the
    /// rejection, if any.
    pub answered: Option<BatchPredictionTicket>,
}

impl RejectedBatch {
    fn new(
        plans: Vec<PlanNode>,
        reason: ServeError,
        parts: Vec<mpsc::Receiver<(Vec<Prediction>, Option<ActiveTrace>)>>,
    ) -> Self {
        RejectedBatch {
            plans,
            reason,
            answered: (!parts.is_empty()).then_some(BatchPredictionTicket { parts }),
        }
    }
}

impl std::fmt::Debug for RejectedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RejectedBatch")
            .field("plans", &self.plans.len())
            .field("reason", &self.reason)
            .field("answered", &self.answered.is_some())
            .finish()
    }
}

impl std::fmt::Display for RejectedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch rejected: {} ({} plans unsent)",
            self.reason,
            self.plans.len()
        )
    }
}

/// A unit of queued work: one plan, or a whole batch of plans that shares
/// one featurization/inference pass.
enum Job {
    Single {
        plan: PlanNode,
        enqueued: Instant,
        reply: mpsc::Sender<(Prediction, Option<ActiveTrace>)>,
        trace: Option<ActiveTrace>,
    },
    Batch {
        plans: Vec<PlanNode>,
        enqueued: Instant,
        reply: mpsc::Sender<(Vec<Prediction>, Option<ActiveTrace>)>,
        trace: Option<ActiveTrace>,
    },
}

struct Shared {
    /// The currently served model, swappable at runtime.  Workers take
    /// the read lock only long enough to clone the `Arc`; a swap takes
    /// the write lock only long enough to replace it — neither ever
    /// blocks on inference.
    model: RwLock<Arc<ServedModel>>,
    catalog: SchemaCatalog,
    cache: FeatureCache,
    metrics: ServeMetrics,
    tracer: Tracer,
}

impl Shared {
    fn current(&self) -> Arc<ServedModel> {
        Arc::clone(&self.model.read().expect("served model lock poisoned"))
    }
}

/// A running prediction service over one trained model and one database
/// catalog.
pub struct PredictionServer {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl PredictionServer {
    /// Spawn the worker pool and start accepting requests.
    ///
    /// The catalog must describe the database the request plans were
    /// optimised for — it supplies the table/column statistics the
    /// transferable featurization reads.
    pub fn start(model: TrainedModel, catalog: SchemaCatalog, config: ServerConfig) -> Self {
        PredictionServer::start_versioned(model, 1, catalog, config)
    }

    /// [`PredictionServer::start`] with an explicit initial model version
    /// (use the registry version the model was loaded from, so
    /// [`Prediction::model_version`] matches the registry lifecycle).
    pub fn start_versioned(
        model: TrainedModel,
        version: u32,
        catalog: SchemaCatalog,
        config: ServerConfig,
    ) -> Self {
        assert!(config.workers > 0, "a server needs at least one worker");
        assert!(
            config.queue_capacity > 0,
            "a zero-capacity queue would reject every request"
        );
        let shared = Arc::new(Shared {
            model: RwLock::new(Arc::new(ServedModel { version, model })),
            catalog,
            cache: FeatureCache::new(config.cache_capacity),
            metrics: ServeMetrics::new(),
            tracer: Tracer::new(TRACE_RING),
        });
        let (sender, receiver) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("zsdb-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("failed to spawn serving worker")
            })
            .collect();
        PredictionServer {
            sender: Some(sender),
            workers,
            shared,
            config,
        }
    }

    /// Enqueue a prediction request, blocking while the queue is full
    /// (backpressure).
    pub fn submit(&self, plan: PlanNode) -> Result<PredictionTicket, ServeError> {
        self.submit_traced(plan, None)
    }

    /// [`PredictionServer::submit`] carrying an in-flight trace: workers
    /// mark the queue-wait/cache/featurize/forward stages on it, and the
    /// trace comes back through [`PredictionTicket::wait_traced`].
    pub fn submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<PredictionTicket, ServeError> {
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            enqueued: Instant::now(),
            reply,
            trace,
        };
        self.sender
            .as_ref()
            .ok_or(ServeError::Closed)?
            .send(job)
            .map_err(|_| ServeError::Closed)?;
        self.shared.metrics.queue_inc();
        Ok(PredictionTicket { rx })
    }

    /// Enqueue a batch of plans, blocking while the queue is full
    /// (backpressure).
    ///
    /// The batch is split into chunks of at most
    /// [`ServerConfig::max_batch_size`] plans; each chunk occupies one
    /// bounded-queue slot and is answered by a single worker in one
    /// pass — one featurization sweep (cache-assisted) and one batched
    /// forward through the model's (level, kind) schedule — so
    /// per-request overhead is amortised across the batch while
    /// `queue_capacity` still bounds in-flight work.  Every prediction
    /// is bit-identical to submitting the same plan through
    /// [`PredictionServer::submit`]; results come back in submission
    /// order.
    pub fn submit_batch(&self, plans: Vec<PlanNode>) -> Result<BatchPredictionTicket, ServeError> {
        // Split oversized submissions into max_batch_size chunks, each a
        // bounded-queue entry of its own: queue_capacity keeps bounding
        // in-flight work, and an over-large batch experiences the same
        // blocking backpressure as a burst of single requests.
        let max = self.config.max_batch_size.max(1);
        let mut parts = Vec::with_capacity(plans.len().div_ceil(max).max(1));
        let mut remaining = plans;
        while !remaining.is_empty() {
            let rest = if remaining.len() > max {
                remaining.split_off(max)
            } else {
                Vec::new()
            };
            let chunk = std::mem::replace(&mut remaining, rest);
            let (reply, rx) = mpsc::channel();
            let job = Job::Batch {
                plans: chunk,
                enqueued: Instant::now(),
                reply,
                trace: None,
            };
            self.sender
                .as_ref()
                .ok_or(ServeError::Closed)?
                .send(job)
                .map_err(|_| ServeError::Closed)?;
            self.shared.metrics.queue_inc();
            parts.push(rx);
        }
        Ok(BatchPredictionTicket { parts })
    }

    /// Enqueue a prediction request without blocking; fails with a
    /// [`RejectedRequest`] carrying [`ServeError::Overloaded`] when the
    /// queue is full, returning the plan to the caller for retry.  Every
    /// rejection is counted in
    /// [`MetricsSnapshot::rejected_requests`](crate::MetricsSnapshot).
    pub fn try_submit(&self, plan: PlanNode) -> Result<PredictionTicket, RejectedRequest> {
        self.try_submit_traced(plan, None)
    }

    /// [`PredictionServer::try_submit`] carrying an in-flight trace (see
    /// [`submit_traced`](PredictionServer::submit_traced)).  A rejected
    /// request's trace is dropped unfinished.
    pub fn try_submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<PredictionTicket, RejectedRequest> {
        let sender = match self.sender.as_ref() {
            Some(s) => s,
            None => {
                self.shared.metrics.record_rejection();
                return Err(RejectedRequest::new(plan, ServeError::Closed));
            }
        };
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            enqueued: Instant::now(),
            reply,
            trace,
        };
        let take_plan = |job: Job| match job {
            Job::Single { plan, .. } => plan,
            Job::Batch { .. } => unreachable!("single submission cannot hold a batch"),
        };
        match sender.try_send(job) {
            Ok(()) => {
                self.shared.metrics.queue_inc();
                Ok(PredictionTicket { rx })
            }
            Err(TrySendError::Full(job)) => {
                self.shared.metrics.record_rejection();
                Err(RejectedRequest::new(take_plan(job), ServeError::Overloaded))
            }
            Err(TrySendError::Disconnected(job)) => {
                self.shared.metrics.record_rejection();
                Err(RejectedRequest::new(take_plan(job), ServeError::Closed))
            }
        }
    }

    /// Enqueue a batch of plans without blocking — the load-shedding
    /// sibling of [`PredictionServer::submit_batch`].
    ///
    /// The batch is split into `max_batch_size` chunks exactly like
    /// `submit_batch`, but each chunk is enqueued with a non-blocking
    /// `try_send`.  On the first full-queue (or closed-server) chunk the
    /// submission stops and the *unsent remainder* comes back in
    /// [`RejectedBatch::plans`]; chunks already enqueued keep running and
    /// are claimable through [`RejectedBatch::answered`], so no accepted
    /// work is lost and no rejected plan is silently dropped.  A batch
    /// no larger than `max_batch_size` is a single chunk, making the
    /// admission decision all-or-nothing.  Each rejection counts once in
    /// [`MetricsSnapshot::rejected_requests`](crate::MetricsSnapshot).
    pub fn try_submit_batch(
        &self,
        plans: Vec<PlanNode>,
    ) -> Result<BatchPredictionTicket, RejectedBatch> {
        self.try_submit_batch_traced(plans, None)
    }

    /// [`PredictionServer::try_submit_batch`] carrying an in-flight
    /// trace.  The trace rides on the first chunk (a batch within
    /// `max_batch_size` is exactly one chunk) and comes back through
    /// [`BatchPredictionTicket::wait_traced`]; if the first chunk is
    /// rejected the trace is dropped unfinished.
    pub fn try_submit_batch_traced(
        &self,
        plans: Vec<PlanNode>,
        mut trace: Option<ActiveTrace>,
    ) -> Result<BatchPredictionTicket, RejectedBatch> {
        let max = self.config.max_batch_size.max(1);
        let mut parts = Vec::with_capacity(plans.len().div_ceil(max));
        let mut remaining = plans;
        while !remaining.is_empty() {
            let sender = match self.sender.as_ref() {
                Some(s) => s,
                None => {
                    self.shared.metrics.record_rejection();
                    return Err(RejectedBatch::new(remaining, ServeError::Closed, parts));
                }
            };
            let rest = if remaining.len() > max {
                remaining.split_off(max)
            } else {
                Vec::new()
            };
            let chunk = std::mem::replace(&mut remaining, rest);
            let (reply, rx) = mpsc::channel();
            let job = Job::Batch {
                plans: chunk,
                enqueued: Instant::now(),
                reply,
                trace: trace.take(),
            };
            let take_plans = |job: Job| match job {
                Job::Batch { plans, .. } => plans,
                Job::Single { .. } => unreachable!("batch submission cannot hold a single"),
            };
            match sender.try_send(job) {
                Ok(()) => {
                    self.shared.metrics.queue_inc();
                    parts.push(rx);
                }
                Err(TrySendError::Full(job)) => {
                    self.shared.metrics.record_rejection();
                    let mut unsent = take_plans(job);
                    unsent.append(&mut remaining);
                    return Err(RejectedBatch::new(unsent, ServeError::Overloaded, parts));
                }
                Err(TrySendError::Disconnected(job)) => {
                    self.shared.metrics.record_rejection();
                    let mut unsent = take_plans(job);
                    unsent.append(&mut remaining);
                    return Err(RejectedBatch::new(unsent, ServeError::Closed, parts));
                }
            }
        }
        Ok(BatchPredictionTicket { parts })
    }

    /// Submit and wait for the answer (convenience for sequential
    /// clients).
    pub fn predict_blocking(&self, plan: PlanNode) -> Result<Prediction, ServeError> {
        self.submit(plan)?.wait()
    }

    /// Atomically replace the served model with a new version — the
    /// zero-downtime half of the online adaptation loop.
    ///
    /// In-flight requests and batches finish on the weights they started
    /// with (workers pin the model `Arc` per job); requests dequeued
    /// after the swap are answered by the new version.  Cached features
    /// are keyed by the version that produced them, so a new artifact
    /// that featurizes differently can never be served a stale graph;
    /// the swap additionally clears the cache so the old version's
    /// entries don't linger as dead weight.  Submission is never paused
    /// and no queued request is lost.
    pub fn swap_model(&self, model: TrainedModel, version: u32) {
        let next = Arc::new(ServedModel { version, model });
        *self
            .shared
            .model
            .write()
            .expect("served model lock poisoned") = next;
        self.shared.cache.invalidate();
        self.shared.metrics.record_swap();
        self.shared.tracer.event(
            "serve.model_swap",
            f64::from(version),
            format!("hot-swapped to model version {version}"),
        );
    }

    /// The currently served model (and its version), pinned.  The
    /// adaptation loop uses this to fine-tune *from* the live weights;
    /// holding the `Arc` keeps those weights alive across a concurrent
    /// swap.
    pub fn model(&self) -> Arc<ServedModel> {
        self.shared.current()
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> u32 {
        self.shared.current().version
    }

    /// The catalog requests are featurized against.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.shared.catalog
    }

    /// Current serving metrics (throughput, latency percentiles, cache
    /// effectiveness).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.cache.stats(), self.config.workers)
    }

    /// Feature-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The server's trace collector: begin traces to attach to
    /// [`submit_traced`](PredictionServer::submit_traced), look finished
    /// ones up by id, and record standalone events.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The live metrics recorder behind [`metrics`](Self::metrics) —
    /// exposes the queue gauge, per-stage histogram recorder and the
    /// named-metric registry.
    pub fn recorder(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Prometheus text exposition of the serving metrics.
    pub fn prometheus_text(&self) -> String {
        self.shared
            .metrics
            .prometheus_text(self.shared.cache.stats(), self.config.workers)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Drain the queue, stop all workers and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        // Dropping the sole SyncSender disconnects the channel; workers
        // finish queued jobs and exit when `recv` fails.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop(shared: &Shared, receiver: &Mutex<Receiver<Job>>) {
    let mut scratch = InferenceScratch::default();
    loop {
        // Hold the receiver lock only while dequeuing, never during
        // inference.
        let job = match receiver.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shutdown
        };
        shared.metrics.queue_dec();
        match job {
            Job::Single {
                plan,
                enqueued,
                reply,
                mut trace,
            } => {
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_QUEUE_WAIT);
                }
                // Pin the current model for the whole job: a concurrent
                // hot-swap never changes weights mid-request.
                let served = shared.current();
                let fingerprint = plan_fingerprint(&plan);
                let (graph, cache_hit) = {
                    // On a miss the closure runs: its entry checkpoint
                    // closes the cache-lookup stage, so featurization gets
                    // its own stage below.
                    let miss_trace = &mut trace;
                    shared
                        .cache
                        .get_or_insert_with(served.version, fingerprint, || {
                            if let Some(t) = miss_trace.as_mut() {
                                t.mark(STAGE_CACHE_LOOKUP);
                            }
                            featurize_plan(&shared.catalog, &plan, served.model.featurizer)
                        })
                };
                if let Some(t) = trace.as_mut() {
                    if cache_hit {
                        t.mark(STAGE_CACHE_LOOKUP);
                    } else {
                        t.mark(STAGE_FEATURIZE);
                    }
                }
                let runtime_secs = served.model.model.predict_with(&graph, &mut scratch);
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_FORWARD);
                }
                let latency = enqueued.elapsed();
                shared.metrics.record(latency);
                // A dropped ticket just means the client stopped waiting.
                let _ = reply.send((
                    Prediction {
                        runtime_secs,
                        fingerprint,
                        cache_hit,
                        latency,
                        model_version: served.version,
                    },
                    trace,
                ));
            }
            Job::Batch {
                plans,
                enqueued,
                reply,
                mut trace,
            } => {
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_QUEUE_WAIT);
                }
                // One featurization sweep (cache-assisted), then a single
                // batched forward over the whole request batch — all on
                // one pinned model version.
                let served = shared.current();
                let mut fingerprints = Vec::with_capacity(plans.len());
                let mut cache_hits = Vec::with_capacity(plans.len());
                let mut graphs = Vec::with_capacity(plans.len());
                for plan in &plans {
                    let fingerprint = plan_fingerprint(plan);
                    let (graph, cache_hit) =
                        shared
                            .cache
                            .get_or_insert_with(served.version, fingerprint, || {
                                featurize_plan(&shared.catalog, plan, served.model.featurizer)
                            });
                    fingerprints.push(fingerprint);
                    cache_hits.push(cache_hit);
                    graphs.push(graph);
                }
                if let Some(t) = trace.as_mut() {
                    // Lookups and featurization interleave across the
                    // sweep, so the whole sweep is one featurize stage.
                    t.mark(STAGE_FEATURIZE);
                }
                let refs: Vec<&zsdb_core::PlanGraph> = graphs.iter().map(|g| g.as_ref()).collect();
                let runtimes = served.model.model.predict_batch(&refs);
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_FORWARD);
                }
                let latency = enqueued.elapsed();
                shared.metrics.record_batch(plans.len(), latency);
                let predictions = runtimes
                    .into_iter()
                    .zip(fingerprints)
                    .zip(cache_hits)
                    .map(|((runtime_secs, fingerprint), cache_hit)| Prediction {
                        runtime_secs,
                        fingerprint,
                        cache_hit,
                        latency,
                        model_version: served.version,
                    })
                    .collect();
                let _ = reply.send((predictions, trace));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_core::model::ModelConfig;
    use zsdb_core::train::{Trainer, TrainingConfig};
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn tiny_server_fixture() -> (TrainedModel, SchemaCatalog, Vec<PlanNode>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 1);
        let graphs: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| {
                zsdb_core::features::featurize_execution(db.catalog(), e, FeaturizerConfig::exact())
            })
            .collect();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let model = trainer.train(&graphs);
        let plans = runner.plan_workload(&queries);
        (model, db.catalog().clone(), plans)
    }

    #[test]
    fn served_predictions_match_the_single_threaded_path() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model.clone(),
            catalog.clone(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        for plan in &plans {
            let served = server.predict_blocking(plan.clone()).unwrap();
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(served.runtime_secs.to_bits(), reference.to_bits());
            assert_eq!(served.fingerprint, plan_fingerprint(plan));
        }
    }

    #[test]
    fn repeated_plans_hit_the_cache() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(model, catalog, ServerConfig::default());
        let first = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(!first.cache_hit);
        let second = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.runtime_secs.to_bits(), second.runtime_secs.to_bits());
        assert!(server.cache_stats().hit_rate() > 0.0);
    }

    #[test]
    fn submit_batch_matches_single_submission_bit_for_bit() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        // Reference: every plan served individually.
        let singles: Vec<Prediction> = plans
            .iter()
            .map(|p| server.predict_blocking(p.clone()).unwrap())
            .collect();
        // Same plans as one batch.
        let batch = server
            .submit_batch(plans.clone())
            .expect("submit batch")
            .wait()
            .expect("batch answered");
        assert_eq!(batch.len(), plans.len());
        for (single, batched) in singles.iter().zip(&batch) {
            assert_eq!(
                single.runtime_secs.to_bits(),
                batched.runtime_secs.to_bits()
            );
            assert_eq!(single.fingerprint, batched.fingerprint);
            // The singles warmed the cache, so the batch hits it.
            assert!(batched.cache_hit);
        }
        // Histogram: |plans| singles in bucket "1", one batch in its
        // own bucket.
        let metrics = server.metrics();
        assert_eq!(metrics.batch_size_histogram[0], plans.len() as u64);
        assert_eq!(
            metrics.batch_size_histogram.iter().sum::<u64>(),
            plans.len() as u64 + 1
        );
        assert_eq!(metrics.total_requests, 2 * plans.len() as u64);

        // Empty batches answer immediately with no work recorded.
        let empty = server.submit_batch(Vec::new()).unwrap().wait().unwrap();
        assert!(empty.is_empty());
        assert_eq!(server.metrics().total_requests, 2 * plans.len() as u64);
    }

    #[test]
    fn oversized_batches_are_split_but_answered_in_order() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                max_batch_size: 4,
                ..ServerConfig::default()
            },
        );
        let expected: Vec<u64> = plans
            .iter()
            .map(|p| server.predict_blocking(p.clone()).unwrap().runtime_secs)
            .map(f64::to_bits)
            .collect();
        // |plans| = 15 with max_batch_size 4 → chunks of 4, 4, 4, 3.
        let batch = server.submit_batch(plans.clone()).unwrap().wait().unwrap();
        assert_eq!(batch.len(), plans.len());
        for (p, e) in batch.iter().zip(&expected) {
            assert_eq!(
                p.runtime_secs.to_bits(),
                *e,
                "order preserved across chunks"
            );
        }
        let hist = server.metrics().batch_size_histogram;
        assert_eq!(hist[2], 3, "three full chunks of 4 in the 4-7 bucket");
        assert_eq!(hist[1], 1, "one tail chunk of 3 in the 2-3 bucket");
    }

    #[test]
    fn hot_swap_switches_versions_and_invalidates_the_cache() {
        let (model, catalog, plans) = tiny_server_fixture();
        // A second, distinguishable model: fine-tune the first.
        let graphs: Vec<_> = plans
            .iter()
            .map(|p| {
                let mut g = featurize_plan(&catalog, p, model.featurizer);
                g.runtime_secs = Some(1.0);
                g
            })
            .collect();
        let tuned = zsdb_core::Trainer::finetune_from(
            &model,
            &graphs,
            zsdb_core::FinetuneConfig {
                epochs: 3,
                learning_rate: 1e-3,
                ..zsdb_core::FinetuneConfig::default()
            },
        );
        assert_ne!(
            model.predict(&graphs[0]).to_bits(),
            tuned.predict(&graphs[0]).to_bits(),
            "the two versions must answer differently"
        );

        let server =
            PredictionServer::start(model.clone(), catalog.clone(), ServerConfig::default());
        assert_eq!(server.model_version(), 1);
        let before = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(before.model_version, 1);
        let reference = model.predict(&featurize_plan(&catalog, &plans[0], model.featurizer));
        assert_eq!(before.runtime_secs.to_bits(), reference.to_bits());

        // Warm the cache, then swap.
        let warmed = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(warmed.cache_hit);
        server.swap_model(tuned.clone(), 2);
        assert_eq!(server.model_version(), 2);

        let after = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(after.model_version, 2);
        assert!(!after.cache_hit, "swap invalidated the feature cache");
        let tuned_reference = tuned.predict(&featurize_plan(&catalog, &plans[0], tuned.featurizer));
        assert_eq!(after.runtime_secs.to_bits(), tuned_reference.to_bits());

        let metrics = server.metrics();
        assert_eq!(metrics.model_swaps, 1);
        assert_eq!(metrics.cache_invalidations, 1);
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        let (model, catalog, plans) = tiny_server_fixture();
        // One worker and a one-slot queue: a burst must eventually see
        // `Overloaded` (the first job may still be in flight).
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        );
        let mut overloaded = 0;
        let mut tickets = Vec::new();
        for _ in 0..200 {
            match server.try_submit(plans[1].clone()) {
                Ok(t) => tickets.push(t),
                Err(RejectedRequest {
                    plan,
                    reason: ServeError::Overloaded,
                }) => {
                    overloaded += 1;
                    // The plan comes back intact for a later retry.
                    assert_eq!(&*plan, &plans[1]);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(overloaded > 0, "a 200-request burst should overflow");
        // Every shed request is visible in the metrics.
        assert_eq!(server.metrics().rejected_requests, overloaded);
    }

    #[test]
    fn try_submit_batch_is_atomic_up_to_max_batch_size() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                max_batch_size: 64,
            },
        );
        // A batch within max_batch_size is one queue slot: it is either
        // admitted whole or rejected whole with every plan returned.
        let mut admitted = Vec::new();
        let mut rejected_whole = 0usize;
        for _ in 0..100 {
            match server.try_submit_batch(plans.clone()) {
                Ok(t) => admitted.push(t),
                Err(rej) => {
                    assert!(matches!(rej.reason, ServeError::Overloaded));
                    assert_eq!(rej.plans, plans, "whole batch returned for retry");
                    assert!(rej.answered.is_none(), "nothing partially admitted");
                    rejected_whole += 1;
                }
            }
        }
        let admitted_count = admitted.len();
        for t in admitted {
            assert_eq!(t.wait().unwrap().len(), plans.len());
        }
        assert!(rejected_whole > 0, "a 100-batch burst should overflow");
        let metrics = server.metrics();
        assert_eq!(metrics.rejected_requests, rejected_whole as u64);
        assert_eq!(
            metrics.total_requests,
            (admitted_count * plans.len()) as u64
        );

        // Empty batches are admitted without consuming a queue slot.
        let empty = server.try_submit_batch(Vec::new()).unwrap().wait().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn try_submit_batch_reports_partial_admission_honestly() {
        let (model, catalog, plans) = tiny_server_fixture();
        // Tiny chunks over a tiny queue: an oversized batch will get some
        // chunks in before the queue fills.
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                max_batch_size: 2,
            },
        );
        // Keep submitting the 15-plan batch (8 chunks) until one lands on
        // a full queue mid-way.
        let mut saw_partial = false;
        for _ in 0..200 {
            match server.try_submit_batch(plans.clone()) {
                Ok(t) => {
                    t.wait().unwrap();
                }
                Err(rej) => {
                    assert!(matches!(rej.reason, ServeError::Overloaded));
                    if let Some(answered) = rej.answered {
                        // Admitted prefix + unsent remainder = the batch,
                        // in order.
                        let prefix = answered.wait().unwrap();
                        assert_eq!(prefix.len() + rej.plans.len(), plans.len());
                        let sent = plans.len() - rej.plans.len();
                        assert_eq!(rej.plans, plans[sent..].to_vec());
                        saw_partial = true;
                    } else {
                        assert_eq!(rej.plans, plans);
                    }
                    if saw_partial {
                        break;
                    }
                }
            }
        }
        assert!(saw_partial, "an 8-chunk batch over a 2-slot queue splits");
    }

    #[test]
    fn closed_server_rejections_are_counted() {
        let (model, catalog, plans) = tiny_server_fixture();
        let mut server = PredictionServer::start(model, catalog, ServerConfig::default());
        server.stop_workers();
        let rejected = server.try_submit(plans[0].clone()).unwrap_err();
        assert!(matches!(rejected.reason, ServeError::Closed));
        let rejected_batch = server.try_submit_batch(plans.clone()).unwrap_err();
        assert!(matches!(rejected_batch.reason, ServeError::Closed));
        assert_eq!(rejected_batch.plans, plans);
        assert_eq!(server.metrics().rejected_requests, 2);
    }

    #[test]
    fn dropped_tickets_do_not_wedge_workers_or_leak_queue_slots() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
        );
        // Clients that give up: submit and immediately drop the ticket —
        // single and batch — more times than the queue holds.
        for plan in plans.iter().cycle().take(12) {
            drop(server.submit(plan.clone()).unwrap());
        }
        drop(server.submit_batch(plans.clone()).unwrap());
        // Workers must still drain the queue and answer new requests.
        let answered = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(answered.runtime_secs.is_finite());
        let metrics = server.metrics();
        // Every abandoned request was still fully processed (no wedged
        // worker, no leaked slot): 12 singles + one 15-plan batch + 1.
        assert_eq!(metrics.total_requests, 12 + plans.len() as u64 + 1);
        assert_eq!(metrics.rejected_requests, 0);
    }

    #[test]
    fn shutdown_reports_final_metrics_and_closes_submission() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(model, catalog, ServerConfig::default());
        for plan in plans.iter().take(6) {
            server.predict_blocking(plan.clone()).unwrap();
        }
        let final_metrics = server.shutdown();
        assert_eq!(final_metrics.total_requests, 6);
        assert!(final_metrics.throughput_qps > 0.0);
        assert!(final_metrics.latency_p50_ms > 0.0);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let (model, catalog, plans) = tiny_server_fixture();
        let expected: Vec<u64> = plans
            .iter()
            .map(|p| {
                model
                    .predict(&featurize_plan(&catalog, p, model.featurizer))
                    .to_bits()
            })
            .collect();
        let server = Arc::new(PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 4,
                queue_capacity: 16,
                cache_capacity: 128,
                ..ServerConfig::default()
            },
        ));
        let mut clients = Vec::new();
        for c in 0..4 {
            let server = Arc::clone(&server);
            let plans = plans.clone();
            let expected = expected.clone();
            clients.push(std::thread::spawn(move || {
                for round in 0..5 {
                    let idx = (c + round) % plans.len();
                    let served = server.predict_blocking(plans[idx].clone()).unwrap();
                    assert_eq!(served.runtime_secs.to_bits(), expected[idx]);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.metrics().total_requests, 20);
    }
}
