//! Concurrent prediction server: a thread-per-core **sharded** worker
//! pool with fingerprint-routed queues and work stealing.
//!
//! Design notes:
//!
//! * **Thread-per-core shards** — the server spawns
//!   [`ServerConfig::workers`] shards, each owning its *own* bounded
//!   `VecDeque` job queue, its own [`FeatureCache`] slice, and its own
//!   inference scratch (an [`InferenceScratch`] plus a
//!   [`GraphArena`]-backed featurization buffer).  A request is routed to
//!   shard `fingerprint % N` at submission, so every repetition of a plan
//!   shape lands on the shard that cached its features — there is no
//!   single contended queue mutex and no shared LRU on the hot path.
//! * **Work stealing on overload** — a worker whose queue is empty makes
//!   one pass over the other shards' queues (oldest job first) before
//!   parking briefly, so a skewed fingerprint distribution cannot idle
//!   the rest of the pool.  Stolen jobs still consult the *owner* shard's
//!   feature cache (keyed by fingerprint), preserving the one-home-per-
//!   shape cache invariant; only the scratch buffers are the stealer's.
//! * **Backpressure, not unbounded queueing** — every shard queue is
//!   bounded at `queue_capacity / N` (rounded up).
//!   [`PredictionServer::submit`] blocks the producer while the target
//!   shard is full; [`PredictionServer::try_submit`] sheds load
//!   immediately with [`ServeError::Overloaded`].
//! * **Shared-read model** — the trained model is behind an `Arc` and only
//!   ever read; each worker owns private scratch, so steady-state
//!   inference takes no shard-crossing locks, and a warm cache hit (or
//!   arena-warm featurization) performs no heap allocation.
//! * **Deterministic results** — workers featurize with the model's own
//!   [`FeaturizerConfig`](zsdb_core::FeaturizerConfig) and predict with
//!   the same floating-point operations as the single-threaded path, so a
//!   served prediction is bit-identical to
//!   `model.predict(featurize_plan(...))` — independent of the shard
//!   count, the routing, and whether the job was stolen.
//! * **Batched submission** — [`PredictionServer::submit_batch`] enqueues
//!   a batch as one queue entry per [`ServerConfig::max_batch_size`]
//!   chunk (routed by its first plan's fingerprint); a worker featurizes
//!   each chunk in one cache-assisted sweep and answers it with a single
//!   batched forward pass ([`zsdb_core::batch`]), amortising per-request
//!   overhead while staying bit-identical to per-request submission —
//!   and since every chunk occupies a bounded-queue slot,
//!   `queue_capacity` keeps bounding in-flight work for batches too.

use crate::cache::{CacheStats, FeatureCache};
use crate::error::ServeError;
use crate::metrics::{
    MetricsSnapshot, ObservabilityConfig, ServeMetrics, STAGE_CACHE_LOOKUP, STAGE_FEATURIZE,
    STAGE_FORWARD, STAGE_QUEUE_WAIT,
};
use crate::provenance::ProvenanceSeed;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zsdb_catalog::SchemaCatalog;
use zsdb_core::features::{featurize_plan_into, PlanGraph};
use zsdb_core::fingerprint::plan_fingerprint;
use zsdb_core::model::InferenceScratch;
use zsdb_core::train::TrainedModel;
use zsdb_core::GraphArena;
use zsdb_engine::PlanNode;
use zsdb_obs::{ActiveTrace, FlightClass, FlightRecorder, Gauge, Trace, Tracer};
use zsdb_protocol::{ProvenanceRecord, WireSloStatus};

/// Finished traces (and standalone events) the server's [`Tracer`] keeps
/// per recording thread.
const TRACE_RING: usize = 256;

/// How long an idle worker parks on its own queue's condvar between
/// steal passes.  Small enough that a job stuck in a busy neighbour's
/// queue is stolen within a fraction of a millisecond; large enough that
/// an idle pool burns negligible CPU.
const STEAL_PARK: Duration = Duration::from_micros(500);

/// Tunables of a [`PredictionServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of worker threads — equivalently, the number of shards:
    /// every worker owns one shard (queue + cache slice + scratch).  Set
    /// this to the core count for a thread-per-core deployment.
    pub workers: usize,
    /// Total capacity of the bounded request queues (backpressure
    /// threshold), split evenly across the shards (rounded up, so each
    /// shard holds at least one job).
    pub queue_capacity: usize,
    /// Total capacity of the feature cache (entries; 0 disables
    /// caching), split evenly across the per-shard cache slices
    /// (rounded up).
    pub cache_capacity: usize,
    /// Largest batch answered as one unit: `submit_batch` splits bigger
    /// submissions into chunks of at most this many plans, each occupying
    /// one bounded-queue slot — so `queue_capacity` bounds in-flight work
    /// for batches too (within a factor of `max_batch_size`), instead of
    /// a single huge batch bypassing backpressure.
    pub max_batch_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            max_batch_size: 256,
        }
    }
}

/// One answered prediction request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted runtime in seconds.
    pub runtime_secs: f64,
    /// Structural fingerprint of the request plan.
    pub fingerprint: u64,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Enqueue-to-response latency.
    pub latency: Duration,
    /// Version of the model that answered (changes across hot-swaps).
    pub model_version: u32,
    /// Shard the plan's fingerprint routes to (its cache home).
    pub home_shard: u32,
    /// Shard whose worker executed the request — differs from
    /// `home_shard` when the job was work-stolen.
    pub executed_shard: u32,
    /// Whether the request was stolen off its home queue.
    pub stolen: bool,
    /// The flight recorder's verdict on this request's latency.
    pub flight_class: FlightClass,
}

impl Prediction {
    /// The provenance seed of this prediction — everything a finished
    /// trace needs to become a full
    /// [`ProvenanceRecord`].
    pub fn provenance_seed(&self) -> ProvenanceSeed {
        ProvenanceSeed {
            fingerprint: self.fingerprint,
            model_version: self.model_version,
            cache_hit: self.cache_hit,
            home_shard: self.home_shard,
            executed_shard: self.executed_shard,
            stolen: self.stolen,
            predicted_secs: self.runtime_secs,
            class: self.flight_class,
        }
    }
}

/// A versioned, immutable served model — the unit of an atomic hot-swap.
///
/// Workers pin the current `Arc<ServedModel>` per dequeued job, so a
/// concurrent [`PredictionServer::swap_model`] never changes the weights
/// under an in-flight request or batch: work that already started
/// finishes on the old version, work dequeued after the swap runs on the
/// new one.
#[derive(Debug)]
pub struct ServedModel {
    /// Registry version of this model (1 for a model served directly
    /// without a registry).
    pub version: u32,
    /// The model itself.
    pub model: TrainedModel,
}

/// Claim ticket for an in-flight request; redeem with
/// [`PredictionTicket::wait`].
#[derive(Debug)]
pub struct PredictionTicket {
    rx: mpsc::Receiver<(Prediction, Option<ActiveTrace>)>,
}

impl PredictionTicket {
    /// Block until the prediction is ready.  Fails with
    /// [`ServeError::Closed`] if the server shut down before answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.wait_traced().map(|(prediction, _)| prediction)
    }

    /// Like [`PredictionTicket::wait`], but also hands back the request's
    /// in-flight trace (when the request was submitted with one) so the
    /// caller can mark its own final stages and finish it.
    pub fn wait_traced(self) -> Result<(Prediction, Option<ActiveTrace>), ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// Claim ticket for an in-flight batch request; redeem with
/// [`BatchPredictionTicket::wait`].
///
/// A submission larger than
/// [`max_batch_size`](ServerConfig::max_batch_size) is answered in
/// several chunks (possibly by different workers); the ticket stitches
/// them back together in submission order.
#[derive(Debug)]
pub struct BatchPredictionTicket {
    parts: Vec<mpsc::Receiver<(Vec<Prediction>, Option<ActiveTrace>)>>,
}

impl BatchPredictionTicket {
    /// Block until all predictions of the batch are ready and return them
    /// in submission order.  Fails with [`ServeError::Closed`] if the
    /// server shut down before answering.
    pub fn wait(self) -> Result<Vec<Prediction>, ServeError> {
        self.wait_traced().map(|(predictions, _)| predictions)
    }

    /// Like [`BatchPredictionTicket::wait`], but also hands back the
    /// batch's in-flight trace.  A traced batch submission attaches its
    /// trace to the first chunk; the returned trace is the first one any
    /// chunk carried.
    pub fn wait_traced(self) -> Result<(Vec<Prediction>, Option<ActiveTrace>), ServeError> {
        let mut predictions = Vec::new();
        let mut trace = None;
        for part in self.parts {
            let (chunk, chunk_trace) = part.recv().map_err(|_| ServeError::Closed)?;
            predictions.extend(chunk);
            trace = trace.or(chunk_trace);
        }
        Ok((predictions, trace))
    }
}

/// A request that [`PredictionServer::try_submit`] could not enqueue: the
/// plan comes back (boxed, to keep the `Err` variant small) together with
/// the rejection reason so the caller can retry or shed it.
#[derive(Debug)]
pub struct RejectedRequest {
    /// The plan that was not enqueued.
    pub plan: Box<PlanNode>,
    /// Why it was rejected ([`ServeError::Overloaded`] or
    /// [`ServeError::Closed`]).
    pub reason: ServeError,
}

impl RejectedRequest {
    pub(crate) fn new(plan: PlanNode, reason: ServeError) -> Self {
        RejectedRequest {
            plan: Box::new(plan),
            reason,
        }
    }
}

impl std::fmt::Display for RejectedRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request rejected: {}", self.reason)
    }
}

impl std::error::Error for RejectedRequest {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.reason)
    }
}

/// A batch that [`PredictionServer::try_submit_batch`] could not fully
/// enqueue.
///
/// Chunked admission cannot be undone once a chunk is in the queue, so a
/// partial failure is reported honestly: [`RejectedBatch::plans`] holds
/// the unsent remainder (in submission order, for retry) and
/// [`RejectedBatch::answered`] the ticket for chunks that *were*
/// admitted before the queue filled up — `None` when nothing was.
pub struct RejectedBatch {
    /// The plans that were not enqueued, in submission order.
    pub plans: Vec<PlanNode>,
    /// Why admission stopped ([`ServeError::Overloaded`] or
    /// [`ServeError::Closed`]).
    pub reason: ServeError,
    /// Ticket for the prefix of the batch that was admitted before the
    /// rejection, if any.
    pub answered: Option<BatchPredictionTicket>,
}

impl RejectedBatch {
    fn new(
        plans: Vec<PlanNode>,
        reason: ServeError,
        parts: Vec<mpsc::Receiver<(Vec<Prediction>, Option<ActiveTrace>)>>,
    ) -> Self {
        RejectedBatch {
            plans,
            reason,
            answered: (!parts.is_empty()).then_some(BatchPredictionTicket { parts }),
        }
    }
}

impl std::fmt::Debug for RejectedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RejectedBatch")
            .field("plans", &self.plans.len())
            .field("reason", &self.reason)
            .field("answered", &self.answered.is_some())
            .finish()
    }
}

impl std::fmt::Display for RejectedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch rejected: {} ({} plans unsent)",
            self.reason,
            self.plans.len()
        )
    }
}

/// A unit of queued work: one plan (with its routing fingerprint,
/// computed once at submission), or a whole batch of plans that shares
/// one featurization/inference pass.
enum Job {
    Single {
        plan: PlanNode,
        fingerprint: u64,
        enqueued: Instant,
        reply: mpsc::Sender<(Prediction, Option<ActiveTrace>)>,
        trace: Option<ActiveTrace>,
    },
    Batch {
        plans: Vec<PlanNode>,
        enqueued: Instant,
        reply: mpsc::Sender<(Vec<Prediction>, Option<ActiveTrace>)>,
        trace: Option<ActiveTrace>,
    },
}

/// Mutable half of a shard's queue, behind its mutex.
struct ShardState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// What a worker got when it asked its own queue for work.
enum Dequeued {
    /// A job to run.
    Job(Box<Job>),
    /// Queue empty and the server is shutting down: exit.
    Closed,
    /// Queue empty, park timed out: go try a steal pass.
    Idle,
}

/// One server shard: a bounded job queue (mutex + condvars), the shard's
/// slice of the feature cache, and its queue-depth gauge.  Shard `i` is
/// owned by worker `i`; other workers touch its queue only to steal and
/// its cache only for fingerprints that route here.
struct Shard {
    state: Mutex<ShardState>,
    /// Signalled on push; the owning worker parks here when idle.
    not_empty: Condvar,
    /// Signalled on pop; blocking producers park here when the shard is
    /// full.
    not_full: Condvar,
    capacity: usize,
    /// The `serve.shard.N.queue_depth` gauge.
    depth: Gauge,
    /// This shard's slice of the feature cache: every fingerprint that
    /// routes here is cached here and nowhere else.
    cache: FeatureCache,
}

impl Shard {
    fn new(capacity: usize, cache_capacity: usize, depth: Gauge) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            depth,
            cache: FeatureCache::new(cache_capacity),
        }
    }

    /// Enqueue, blocking while the shard is full (backpressure).  Returns
    /// the job (boxed — the error path is cold and `Job` is large) if the
    /// server closed before a slot opened.
    fn push_wait(&self, job: Job) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        while !state.closed && state.jobs.len() >= self.capacity {
            state = self
                .not_full
                .wait(state)
                .expect("shard queue poisoned while waiting");
        }
        if state.closed {
            return Err(Box::new(job));
        }
        state.jobs.push_back(job);
        self.depth.inc();
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking enqueue; on failure the job comes back with the
    /// rejection reason ([`ServeError::Closed`] wins over `Overloaded`,
    /// matching the unsharded server's admission order).
    fn try_push(&self, job: Job) -> Result<(), (Box<Job>, ServeError)> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        if state.closed {
            return Err((Box::new(job), ServeError::Closed));
        }
        if state.jobs.len() >= self.capacity {
            return Err((Box::new(job), ServeError::Overloaded));
        }
        state.jobs.push_back(job);
        self.depth.inc();
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking dequeue of the oldest job — used by the owning
    /// worker's fast path and by stealers.
    fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        let job = state.jobs.pop_front()?;
        self.depth.dec();
        self.not_full.notify_one();
        Some(job)
    }

    /// Dequeue for the owning worker: pop a job, report shutdown once
    /// the queue is drained and closed, or park for at most `park`
    /// before the caller's next steal pass.
    fn pop_or_park(&self, park: Duration) -> Dequeued {
        let mut state = self.state.lock().expect("shard queue poisoned");
        if let Some(job) = state.jobs.pop_front() {
            self.depth.dec();
            self.not_full.notify_one();
            return Dequeued::Job(Box::new(job));
        }
        if state.closed {
            return Dequeued::Closed;
        }
        let (mut state, _timeout) = self
            .not_empty
            .wait_timeout(state, park)
            .expect("shard queue poisoned while parked");
        if let Some(job) = state.jobs.pop_front() {
            self.depth.dec();
            self.not_full.notify_one();
            return Dequeued::Job(Box::new(job));
        }
        if state.closed {
            return Dequeued::Closed;
        }
        Dequeued::Idle
    }

    /// Close the shard: no further admission; the owning worker exits
    /// once the queue is drained.  Wakes parked workers and blocked
    /// producers.
    fn close(&self) {
        self.state.lock().expect("shard queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct Shared {
    /// The currently served model, swappable at runtime.  Workers take
    /// the read lock only long enough to clone the `Arc`; a swap takes
    /// the write lock only long enough to replace it — neither ever
    /// blocks on inference.
    model: RwLock<Arc<ServedModel>>,
    catalog: SchemaCatalog,
    shards: Vec<Shard>,
    metrics: ServeMetrics,
    tracer: Tracer,
}

impl Shared {
    fn current(&self) -> Arc<ServedModel> {
        Arc::clone(&self.model.read().expect("served model lock poisoned"))
    }

    /// The shard a fingerprint routes to — the home of its queue slot
    /// and its cache entry.
    fn shard_of(&self, fingerprint: u64) -> &Shard {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }
}

/// A running prediction service over one trained model and one database
/// catalog.
pub struct PredictionServer {
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl PredictionServer {
    /// Spawn the worker pool and start accepting requests.
    ///
    /// The catalog must describe the database the request plans were
    /// optimised for — it supplies the table/column statistics the
    /// transferable featurization reads.
    pub fn start(model: TrainedModel, catalog: SchemaCatalog, config: ServerConfig) -> Self {
        PredictionServer::start_versioned(model, 1, catalog, config)
    }

    /// [`PredictionServer::start`] with an explicit initial model version
    /// (use the registry version the model was loaded from, so
    /// [`Prediction::model_version`] matches the registry lifecycle).
    pub fn start_versioned(
        model: TrainedModel,
        version: u32,
        catalog: SchemaCatalog,
        config: ServerConfig,
    ) -> Self {
        PredictionServer::start_observed(
            model,
            version,
            catalog,
            config,
            ObservabilityConfig::default(),
        )
    }

    /// [`PredictionServer::start_versioned`] with explicit observability
    /// tuning: the flight recorder's retention thresholds and the SLO
    /// objective the burn-rate windows grade against.
    pub fn start_observed(
        model: TrainedModel,
        version: u32,
        catalog: SchemaCatalog,
        config: ServerConfig,
        observability: ObservabilityConfig,
    ) -> Self {
        assert!(config.workers > 0, "a server needs at least one worker");
        assert!(
            config.queue_capacity > 0,
            "a zero-capacity queue would reject every request"
        );
        let metrics = ServeMetrics::with_observability(observability);
        // The configured totals are split across the shards; div_ceil
        // keeps every shard usable (≥ 1 queue slot, and a non-empty
        // cache slice whenever caching is enabled at all).
        let shard_queue = config.queue_capacity.div_ceil(config.workers).max(1);
        let shard_cache = if config.cache_capacity == 0 {
            0
        } else {
            config.cache_capacity.div_ceil(config.workers)
        };
        let shards = (0..config.workers)
            .map(|i| Shard::new(shard_queue, shard_cache, metrics.shard_queue_gauge(i)))
            .collect();
        let shared = Arc::new(Shared {
            model: RwLock::new(Arc::new(ServedModel { version, model })),
            catalog,
            shards,
            metrics,
            tracer: Tracer::new(TRACE_RING),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zsdb-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn serving worker")
            })
            .collect();
        PredictionServer {
            workers,
            shared,
            config,
        }
    }

    /// Enqueue a prediction request, blocking while the queue is full
    /// (backpressure).
    pub fn submit(&self, plan: PlanNode) -> Result<PredictionTicket, ServeError> {
        self.submit_traced(plan, None)
    }

    /// [`PredictionServer::submit`] carrying an in-flight trace: workers
    /// mark the queue-wait/cache/featurize/forward stages on it, and the
    /// trace comes back through [`PredictionTicket::wait_traced`].
    pub fn submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<PredictionTicket, ServeError> {
        // The fingerprint both routes the request (cache affinity) and
        // keys the cache — computed once here, carried in the job.
        let fingerprint = plan_fingerprint(&plan);
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            fingerprint,
            enqueued: Instant::now(),
            reply,
            trace,
        };
        self.shared
            .shard_of(fingerprint)
            .push_wait(job)
            .map_err(|_| ServeError::Closed)?;
        self.shared.metrics.queue_inc();
        Ok(PredictionTicket { rx })
    }

    /// Enqueue a batch of plans, blocking while the queue is full
    /// (backpressure).
    ///
    /// The batch is split into chunks of at most
    /// [`ServerConfig::max_batch_size`] plans; each chunk occupies one
    /// bounded-queue slot and is answered by a single worker in one
    /// pass — one featurization sweep (cache-assisted) and one batched
    /// forward through the model's (level, kind) schedule — so
    /// per-request overhead is amortised across the batch while
    /// `queue_capacity` still bounds in-flight work.  Every prediction
    /// is bit-identical to submitting the same plan through
    /// [`PredictionServer::submit`]; results come back in submission
    /// order.
    pub fn submit_batch(&self, plans: Vec<PlanNode>) -> Result<BatchPredictionTicket, ServeError> {
        // Split oversized submissions into max_batch_size chunks, each a
        // bounded-queue entry of its own: queue_capacity keeps bounding
        // in-flight work, and an over-large batch experiences the same
        // blocking backpressure as a burst of single requests.
        let max = self.config.max_batch_size.max(1);
        let mut parts = Vec::with_capacity(plans.len().div_ceil(max).max(1));
        let mut remaining = plans;
        while !remaining.is_empty() {
            let rest = if remaining.len() > max {
                remaining.split_off(max)
            } else {
                Vec::new()
            };
            let chunk = std::mem::replace(&mut remaining, rest);
            // Route the chunk by its first plan's fingerprint: a batch of
            // repeats of one shape gets the same cache affinity as the
            // equivalent single submissions.
            let fingerprint = plan_fingerprint(&chunk[0]);
            let (reply, rx) = mpsc::channel();
            let job = Job::Batch {
                plans: chunk,
                enqueued: Instant::now(),
                reply,
                trace: None,
            };
            self.shared
                .shard_of(fingerprint)
                .push_wait(job)
                .map_err(|_| ServeError::Closed)?;
            self.shared.metrics.queue_inc();
            parts.push(rx);
        }
        Ok(BatchPredictionTicket { parts })
    }

    /// Enqueue a prediction request without blocking; fails with a
    /// [`RejectedRequest`] carrying [`ServeError::Overloaded`] when the
    /// queue is full, returning the plan to the caller for retry.  Every
    /// rejection is counted in
    /// [`MetricsSnapshot::rejected_requests`](crate::MetricsSnapshot).
    pub fn try_submit(&self, plan: PlanNode) -> Result<PredictionTicket, RejectedRequest> {
        self.try_submit_traced(plan, None)
    }

    /// [`PredictionServer::try_submit`] carrying an in-flight trace (see
    /// [`submit_traced`](PredictionServer::submit_traced)).  A rejected
    /// request's trace is dropped unfinished.
    pub fn try_submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<PredictionTicket, RejectedRequest> {
        let fingerprint = plan_fingerprint(&plan);
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            fingerprint,
            enqueued: Instant::now(),
            reply,
            trace,
        };
        let take_plan = |job: Job| match job {
            Job::Single { plan, .. } => plan,
            Job::Batch { .. } => unreachable!("single submission cannot hold a batch"),
        };
        match self.shared.shard_of(fingerprint).try_push(job) {
            Ok(()) => {
                self.shared.metrics.queue_inc();
                Ok(PredictionTicket { rx })
            }
            Err((job, reason)) => {
                self.shared.metrics.record_rejection();
                Err(RejectedRequest::new(take_plan(*job), reason))
            }
        }
    }

    /// Enqueue a batch of plans without blocking — the load-shedding
    /// sibling of [`PredictionServer::submit_batch`].
    ///
    /// The batch is split into `max_batch_size` chunks exactly like
    /// `submit_batch`, but each chunk is enqueued with a non-blocking
    /// `try_send`.  On the first full-queue (or closed-server) chunk the
    /// submission stops and the *unsent remainder* comes back in
    /// [`RejectedBatch::plans`]; chunks already enqueued keep running and
    /// are claimable through [`RejectedBatch::answered`], so no accepted
    /// work is lost and no rejected plan is silently dropped.  A batch
    /// no larger than `max_batch_size` is a single chunk, making the
    /// admission decision all-or-nothing.  Each rejection counts once in
    /// [`MetricsSnapshot::rejected_requests`](crate::MetricsSnapshot).
    pub fn try_submit_batch(
        &self,
        plans: Vec<PlanNode>,
    ) -> Result<BatchPredictionTicket, RejectedBatch> {
        self.try_submit_batch_traced(plans, None)
    }

    /// [`PredictionServer::try_submit_batch`] carrying an in-flight
    /// trace.  The trace rides on the first chunk (a batch within
    /// `max_batch_size` is exactly one chunk) and comes back through
    /// [`BatchPredictionTicket::wait_traced`]; if the first chunk is
    /// rejected the trace is dropped unfinished.
    pub fn try_submit_batch_traced(
        &self,
        plans: Vec<PlanNode>,
        mut trace: Option<ActiveTrace>,
    ) -> Result<BatchPredictionTicket, RejectedBatch> {
        let max = self.config.max_batch_size.max(1);
        let mut parts = Vec::with_capacity(plans.len().div_ceil(max));
        let mut remaining = plans;
        while !remaining.is_empty() {
            let rest = if remaining.len() > max {
                remaining.split_off(max)
            } else {
                Vec::new()
            };
            let chunk = std::mem::replace(&mut remaining, rest);
            let fingerprint = plan_fingerprint(&chunk[0]);
            let (reply, rx) = mpsc::channel();
            let job = Job::Batch {
                plans: chunk,
                enqueued: Instant::now(),
                reply,
                trace: trace.take(),
            };
            let take_plans = |job: Job| match job {
                Job::Batch { plans, .. } => plans,
                Job::Single { .. } => unreachable!("batch submission cannot hold a single"),
            };
            match self.shared.shard_of(fingerprint).try_push(job) {
                Ok(()) => {
                    self.shared.metrics.queue_inc();
                    parts.push(rx);
                }
                Err((job, reason)) => {
                    self.shared.metrics.record_rejection();
                    let mut unsent = take_plans(*job);
                    unsent.append(&mut remaining);
                    return Err(RejectedBatch::new(unsent, reason, parts));
                }
            }
        }
        Ok(BatchPredictionTicket { parts })
    }

    /// Submit and wait for the answer (convenience for sequential
    /// clients).
    pub fn predict_blocking(&self, plan: PlanNode) -> Result<Prediction, ServeError> {
        self.submit(plan)?.wait()
    }

    /// Atomically replace the served model with a new version — the
    /// zero-downtime half of the online adaptation loop.
    ///
    /// In-flight requests and batches finish on the weights they started
    /// with (workers pin the model `Arc` per job); requests dequeued
    /// after the swap are answered by the new version.  Cached features
    /// are keyed by the version that produced them, so a new artifact
    /// that featurizes differently can never be served a stale graph;
    /// the swap additionally clears the cache so the old version's
    /// entries don't linger as dead weight.  Submission is never paused
    /// and no queued request is lost.
    pub fn swap_model(&self, model: TrainedModel, version: u32) {
        let next = Arc::new(ServedModel { version, model });
        *self
            .shared
            .model
            .write()
            .expect("served model lock poisoned") = next;
        // Every shard's cache slice is cleared; the merged stats count
        // this as one logical invalidation (see `CacheStats::merge`).
        for shard in &self.shared.shards {
            shard.cache.invalidate();
        }
        self.shared.metrics.record_swap();
        self.shared.tracer.event(
            "serve.model_swap",
            f64::from(version),
            format!("hot-swapped to model version {version}"),
        );
    }

    /// The currently served model (and its version), pinned.  The
    /// adaptation loop uses this to fine-tune *from* the live weights;
    /// holding the `Arc` keeps those weights alive across a concurrent
    /// swap.
    pub fn model(&self) -> Arc<ServedModel> {
        self.shared.current()
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> u32 {
        self.shared.current().version
    }

    /// The catalog requests are featurized against.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.shared.catalog
    }

    /// Current serving metrics (throughput, latency percentiles, cache
    /// effectiveness aggregated across the shards).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.cache_stats(), self.config.workers)
    }

    /// Feature-cache statistics, merged over every shard's cache slice:
    /// hits, misses, lengths and capacities are summed (so the derived
    /// hit-rate divides total hits by total lookups), invalidations
    /// count hot-swaps once regardless of the shard count.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shared.shards {
            total.merge(&shard.cache.stats());
        }
        total
    }

    /// The server's trace collector: begin traces to attach to
    /// [`submit_traced`](PredictionServer::submit_traced), look finished
    /// ones up by id, and record standalone events.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The slow-request flight recorder: bounded rings of materialized
    /// traces, retaining threshold-/tail-slow and failed requests past
    /// the churn of normal traffic.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        self.shared.metrics.flight()
    }

    /// Finish a traced request end to end: closes the trace, records its
    /// per-stage breakdown (with exemplars), feeds the flight recorder
    /// and assembles + stores the prediction's [`ProvenanceRecord`] —
    /// afterwards [`explain`](Self::explain) can answer for the trace's
    /// id.  Returns the finished trace.
    pub fn complete_traced(&self, prediction: &Prediction, trace: ActiveTrace) -> Trace {
        let done = self.shared.tracer.finish(trace);
        self.shared
            .metrics
            .record_completed_trace(&prediction.provenance_seed(), &done);
        done
    }

    /// Full provenance of one served prediction by trace id — plan
    /// fingerprint, model name/version, cache hit, shard placement
    /// (home vs. stolen) and the per-stage latency breakdown.  `None`
    /// when no record with that id is retained (never traced, or aged
    /// out of both provenance rings).
    pub fn explain(&self, trace_id: u64) -> Option<ProvenanceRecord> {
        self.shared.metrics.provenance().find(trace_id)
    }

    /// The retained slow/failed requests' provenance, worst (longest
    /// total latency) first, up to `limit` records.
    pub fn slow_log(&self, limit: usize) -> Vec<ProvenanceRecord> {
        self.shared.metrics.provenance().slow_log(limit)
    }

    /// Current SLO position: the configured latency objective + target
    /// and the rolling windows' good/bad counts, error rates and burn
    /// rates.
    pub fn slo_status(&self) -> WireSloStatus {
        self.shared.metrics.slo_status()
    }

    /// The live metrics recorder behind [`metrics`](Self::metrics) —
    /// exposes the queue gauge, per-stage histogram recorder and the
    /// named-metric registry.
    pub fn recorder(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Prometheus text exposition of the serving metrics (including the
    /// per-shard `serve_shard_N_queue_depth` gauges).
    pub fn prometheus_text(&self) -> String {
        self.shared
            .metrics
            .prometheus_text(self.cache_stats(), self.config.workers)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Drain the queue, stop all workers and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        // Closing every shard stops admission; each worker drains its
        // own queue (every shard has exactly one owning worker) and
        // exits, so no accepted job is dropped.
        for shard in &self.shared.shards {
            shard.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Per-worker reusable buffers: the inference scratch, the featurization
/// arena with its target graph, and the batch sweep's collection
/// vectors.  All of them grow to the workload's high-water mark during
/// warm-up and are then reused allocation-free.
struct WorkerState {
    scratch: InferenceScratch,
    arena: GraphArena,
    /// Arena-backed featurization target, rebuilt in place per miss.
    graph: PlanGraph,
    fingerprints: Vec<u64>,
    cache_hits: Vec<bool>,
    graphs: Vec<Arc<PlanGraph>>,
}

impl WorkerState {
    fn new() -> Self {
        let mut arena = GraphArena::new();
        let graph = arena.take_graph();
        WorkerState {
            scratch: InferenceScratch::default(),
            arena,
            graph,
            fingerprints: Vec::new(),
            cache_hits: Vec::new(),
            graphs: Vec::new(),
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let mut state = WorkerState::new();
    let shard_count = shared.shards.len();
    loop {
        // Fast path: own queue (lock held only to dequeue, never during
        // inference).
        if let Some(job) = shared.shards[me].try_pop() {
            shared.metrics.queue_dec();
            process_job(shared, &mut state, me, job);
            continue;
        }
        // Own queue empty: one steal pass over the other shards, oldest
        // job first, so a fingerprint-skewed burst cannot idle the pool.
        let mut stole = false;
        for offset in 1..shard_count {
            let victim = (me + offset) % shard_count;
            if let Some(job) = shared.shards[victim].try_pop() {
                shared.metrics.queue_dec();
                process_job(shared, &mut state, me, job);
                stole = true;
                break;
            }
        }
        if stole {
            continue;
        }
        // Nothing anywhere: park on the own queue until a push arrives,
        // the park times out (→ next steal pass) or the server closes.
        match shared.shards[me].pop_or_park(STEAL_PARK) {
            Dequeued::Job(job) => {
                shared.metrics.queue_dec();
                process_job(shared, &mut state, me, *job);
            }
            Dequeued::Idle => {}
            Dequeued::Closed => return,
        }
    }
}

/// The shard a fingerprint routes to, as a provenance field.
fn home_shard_of(shared: &Shared, fingerprint: u64) -> u32 {
    (fingerprint % shared.shards.len() as u64) as u32
}

fn process_job(shared: &Shared, state: &mut WorkerState, me: usize, job: Job) {
    match job {
        Job::Single {
            plan,
            fingerprint,
            enqueued,
            reply,
            mut trace,
        } => {
            if let Some(t) = trace.as_mut() {
                t.mark(STAGE_QUEUE_WAIT);
            }
            // Pin the current model for the whole job: a concurrent
            // hot-swap never changes weights mid-request.
            let served = shared.current();
            // The fingerprint's *home* shard holds its cache entry —
            // also when this worker stole the job from another queue.
            let cache = &shared.shard_of(fingerprint).cache;
            let cached = cache.get(served.version, fingerprint);
            if let Some(t) = trace.as_mut() {
                t.mark(STAGE_CACHE_LOOKUP);
            }
            let cache_hit = cached.is_some();
            let runtime_secs = match cached {
                Some(graph) => served.model.model.predict_with(&graph, &mut state.scratch),
                None => {
                    featurize_plan_into(
                        &shared.catalog,
                        &plan,
                        served.model.featurizer,
                        &mut state.arena,
                        &mut state.graph,
                    );
                    // Publishing to the cache clones the graph out of the
                    // arena buffers (cold path only); with caching
                    // disabled the miss path stays allocation-free too.
                    if cache.capacity() > 0 {
                        cache.insert(served.version, fingerprint, Arc::new(state.graph.clone()));
                    }
                    if let Some(t) = trace.as_mut() {
                        t.mark(STAGE_FEATURIZE);
                    }
                    served
                        .model
                        .model
                        .predict_with(&state.graph, &mut state.scratch)
                }
            };
            if let Some(t) = trace.as_mut() {
                t.mark(STAGE_FORWARD);
            }
            let latency = enqueued.elapsed();
            let flight_class = shared.metrics.record(latency);
            let home_shard = home_shard_of(shared, fingerprint);
            // A dropped ticket just means the client stopped waiting.
            let _ = reply.send((
                Prediction {
                    runtime_secs,
                    fingerprint,
                    cache_hit,
                    latency,
                    model_version: served.version,
                    home_shard,
                    executed_shard: me as u32,
                    stolen: home_shard != me as u32,
                    flight_class,
                },
                trace,
            ));
        }
        Job::Batch {
            plans,
            enqueued,
            reply,
            mut trace,
        } => {
            if let Some(t) = trace.as_mut() {
                t.mark(STAGE_QUEUE_WAIT);
            }
            // One featurization sweep (cache-assisted, each plan against
            // its home shard's cache slice), then a single batched
            // forward over the whole request batch — all on one pinned
            // model version.
            let served = shared.current();
            state.fingerprints.clear();
            state.cache_hits.clear();
            state.graphs.clear();
            for plan in &plans {
                let fingerprint = plan_fingerprint(plan);
                let cache = &shared.shard_of(fingerprint).cache;
                let (graph, cache_hit) = match cache.get(served.version, fingerprint) {
                    Some(graph) => (graph, true),
                    None => {
                        featurize_plan_into(
                            &shared.catalog,
                            plan,
                            served.model.featurizer,
                            &mut state.arena,
                            &mut state.graph,
                        );
                        let graph = Arc::new(state.graph.clone());
                        if cache.capacity() > 0 {
                            cache.insert(served.version, fingerprint, Arc::clone(&graph));
                        }
                        (graph, false)
                    }
                };
                state.fingerprints.push(fingerprint);
                state.cache_hits.push(cache_hit);
                state.graphs.push(graph);
            }
            if let Some(t) = trace.as_mut() {
                // Lookups and featurization interleave across the
                // sweep, so the whole sweep is one featurize stage.
                t.mark(STAGE_FEATURIZE);
            }
            let refs: Vec<&PlanGraph> = state.graphs.iter().map(|g| g.as_ref()).collect();
            let runtimes = served.model.model.predict_batch(&refs);
            if let Some(t) = trace.as_mut() {
                t.mark(STAGE_FORWARD);
            }
            let latency = enqueued.elapsed();
            let flight_class = shared.metrics.record_batch(plans.len(), latency);
            let predictions = runtimes
                .into_iter()
                .zip(state.fingerprints.drain(..))
                .zip(state.cache_hits.drain(..))
                .map(|((runtime_secs, fingerprint), cache_hit)| {
                    let home_shard = home_shard_of(shared, fingerprint);
                    Prediction {
                        runtime_secs,
                        fingerprint,
                        cache_hit,
                        latency,
                        model_version: served.version,
                        home_shard,
                        executed_shard: me as u32,
                        stolen: home_shard != me as u32,
                        flight_class,
                    }
                })
                .collect();
            state.graphs.clear();
            let _ = reply.send((predictions, trace));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::features::featurize_plan;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_core::model::ModelConfig;
    use zsdb_core::train::{Trainer, TrainingConfig};
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn tiny_server_fixture() -> (TrainedModel, SchemaCatalog, Vec<PlanNode>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 1);
        let graphs: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| {
                zsdb_core::features::featurize_execution(db.catalog(), e, FeaturizerConfig::exact())
            })
            .collect();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let model = trainer.train(&graphs);
        let plans = runner.plan_workload(&queries);
        (model, db.catalog().clone(), plans)
    }

    #[test]
    fn served_predictions_match_the_single_threaded_path() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model.clone(),
            catalog.clone(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        for plan in &plans {
            let served = server.predict_blocking(plan.clone()).unwrap();
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(served.runtime_secs.to_bits(), reference.to_bits());
            assert_eq!(served.fingerprint, plan_fingerprint(plan));
        }
    }

    #[test]
    fn traced_requests_are_explainable_end_to_end() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start_observed(
            model,
            7,
            catalog,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            ObservabilityConfig {
                // 1ns threshold: every request classifies as slow, so
                // the slow log and provenance retention are exercised.
                flight: zsdb_obs::FlightRecorderConfig {
                    slow_threshold_ns: 1,
                    ..zsdb_obs::FlightRecorderConfig::default()
                },
                slo: zsdb_obs::SloConfig::default(),
            },
        );
        let trace = server.tracer().begin().expect("tracer enabled");
        let trace_id = trace.id();
        let ticket = server.submit_traced(plans[0].clone(), Some(trace)).unwrap();
        let (prediction, returned) = ticket.wait_traced().unwrap();
        assert_eq!(prediction.flight_class, FlightClass::SlowThreshold);
        assert_eq!(
            prediction.home_shard,
            (prediction.fingerprint % 2) as u32,
            "home shard is the fingerprint route"
        );
        let done = server.complete_traced(&prediction, returned.expect("trace returned"));
        assert_eq!(done.id, trace_id);

        let record = server.explain(trace_id).expect("provenance retained");
        assert_eq!(record.model_version, 7);
        assert_eq!(record.model_name, crate::provenance::MODEL_NAME);
        assert_eq!(record.fingerprint, prediction.fingerprint);
        assert_eq!(record.stolen, prediction.stolen);
        assert_eq!(
            record.predicted_secs.to_bits(),
            prediction.runtime_secs.to_bits()
        );
        assert_eq!(
            record.stages.iter().map(|s| s.duration_ns).sum::<u64>(),
            record.total_ns,
            "stages tile the trace"
        );

        let slow = server.slow_log(16);
        assert!(slow.iter().any(|r| r.trace_id == trace_id));
        let slo = server.slo_status();
        assert!(!slo.windows.is_empty());
        assert_eq!(slo.windows[0].good + slo.windows[0].bad, 1);
    }

    #[test]
    fn repeated_plans_hit_the_cache() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(model, catalog, ServerConfig::default());
        let first = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(!first.cache_hit);
        let second = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.runtime_secs.to_bits(), second.runtime_secs.to_bits());
        assert!(server.cache_stats().hit_rate() > 0.0);
    }

    #[test]
    fn submit_batch_matches_single_submission_bit_for_bit() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        // Reference: every plan served individually.
        let singles: Vec<Prediction> = plans
            .iter()
            .map(|p| server.predict_blocking(p.clone()).unwrap())
            .collect();
        // Same plans as one batch.
        let batch = server
            .submit_batch(plans.clone())
            .expect("submit batch")
            .wait()
            .expect("batch answered");
        assert_eq!(batch.len(), plans.len());
        for (single, batched) in singles.iter().zip(&batch) {
            assert_eq!(
                single.runtime_secs.to_bits(),
                batched.runtime_secs.to_bits()
            );
            assert_eq!(single.fingerprint, batched.fingerprint);
            // The singles warmed the cache, so the batch hits it.
            assert!(batched.cache_hit);
        }
        // Histogram: |plans| singles in bucket "1", one batch in its
        // own bucket.
        let metrics = server.metrics();
        assert_eq!(metrics.batch_size_histogram[0], plans.len() as u64);
        assert_eq!(
            metrics.batch_size_histogram.iter().sum::<u64>(),
            plans.len() as u64 + 1
        );
        assert_eq!(metrics.total_requests, 2 * plans.len() as u64);

        // Empty batches answer immediately with no work recorded.
        let empty = server.submit_batch(Vec::new()).unwrap().wait().unwrap();
        assert!(empty.is_empty());
        assert_eq!(server.metrics().total_requests, 2 * plans.len() as u64);
    }

    #[test]
    fn oversized_batches_are_split_but_answered_in_order() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                max_batch_size: 4,
                ..ServerConfig::default()
            },
        );
        let expected: Vec<u64> = plans
            .iter()
            .map(|p| server.predict_blocking(p.clone()).unwrap().runtime_secs)
            .map(f64::to_bits)
            .collect();
        // |plans| = 15 with max_batch_size 4 → chunks of 4, 4, 4, 3.
        let batch = server.submit_batch(plans.clone()).unwrap().wait().unwrap();
        assert_eq!(batch.len(), plans.len());
        for (p, e) in batch.iter().zip(&expected) {
            assert_eq!(
                p.runtime_secs.to_bits(),
                *e,
                "order preserved across chunks"
            );
        }
        let hist = server.metrics().batch_size_histogram;
        assert_eq!(hist[2], 3, "three full chunks of 4 in the 4-7 bucket");
        assert_eq!(hist[1], 1, "one tail chunk of 3 in the 2-3 bucket");
    }

    #[test]
    fn hot_swap_switches_versions_and_invalidates_the_cache() {
        let (model, catalog, plans) = tiny_server_fixture();
        // A second, distinguishable model: fine-tune the first.
        let graphs: Vec<_> = plans
            .iter()
            .map(|p| {
                let mut g = featurize_plan(&catalog, p, model.featurizer);
                g.runtime_secs = Some(1.0);
                g
            })
            .collect();
        let tuned = zsdb_core::Trainer::finetune_from(
            &model,
            &graphs,
            zsdb_core::FinetuneConfig {
                epochs: 3,
                learning_rate: 1e-3,
                ..zsdb_core::FinetuneConfig::default()
            },
        );
        assert_ne!(
            model.predict(&graphs[0]).to_bits(),
            tuned.predict(&graphs[0]).to_bits(),
            "the two versions must answer differently"
        );

        let server =
            PredictionServer::start(model.clone(), catalog.clone(), ServerConfig::default());
        assert_eq!(server.model_version(), 1);
        let before = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(before.model_version, 1);
        let reference = model.predict(&featurize_plan(&catalog, &plans[0], model.featurizer));
        assert_eq!(before.runtime_secs.to_bits(), reference.to_bits());

        // Warm the cache, then swap.
        let warmed = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(warmed.cache_hit);
        server.swap_model(tuned.clone(), 2);
        assert_eq!(server.model_version(), 2);

        let after = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(after.model_version, 2);
        assert!(!after.cache_hit, "swap invalidated the feature cache");
        let tuned_reference = tuned.predict(&featurize_plan(&catalog, &plans[0], tuned.featurizer));
        assert_eq!(after.runtime_secs.to_bits(), tuned_reference.to_bits());

        let metrics = server.metrics();
        assert_eq!(metrics.model_swaps, 1);
        assert_eq!(metrics.cache_invalidations, 1);
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        let (model, catalog, plans) = tiny_server_fixture();
        // One worker and a one-slot queue: a burst must eventually see
        // `Overloaded` (the first job may still be in flight).
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        );
        let mut overloaded = 0;
        let mut tickets = Vec::new();
        for _ in 0..200 {
            match server.try_submit(plans[1].clone()) {
                Ok(t) => tickets.push(t),
                Err(RejectedRequest {
                    plan,
                    reason: ServeError::Overloaded,
                }) => {
                    overloaded += 1;
                    // The plan comes back intact for a later retry.
                    assert_eq!(&*plan, &plans[1]);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(overloaded > 0, "a 200-request burst should overflow");
        // Every shed request is visible in the metrics.
        assert_eq!(server.metrics().rejected_requests, overloaded);
    }

    #[test]
    fn try_submit_batch_is_atomic_up_to_max_batch_size() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                max_batch_size: 64,
            },
        );
        // A batch within max_batch_size is one queue slot: it is either
        // admitted whole or rejected whole with every plan returned.
        let mut admitted = Vec::new();
        let mut rejected_whole = 0usize;
        for _ in 0..100 {
            match server.try_submit_batch(plans.clone()) {
                Ok(t) => admitted.push(t),
                Err(rej) => {
                    assert!(matches!(rej.reason, ServeError::Overloaded));
                    assert_eq!(rej.plans, plans, "whole batch returned for retry");
                    assert!(rej.answered.is_none(), "nothing partially admitted");
                    rejected_whole += 1;
                }
            }
        }
        let admitted_count = admitted.len();
        for t in admitted {
            assert_eq!(t.wait().unwrap().len(), plans.len());
        }
        assert!(rejected_whole > 0, "a 100-batch burst should overflow");
        let metrics = server.metrics();
        assert_eq!(metrics.rejected_requests, rejected_whole as u64);
        assert_eq!(
            metrics.total_requests,
            (admitted_count * plans.len()) as u64
        );

        // Empty batches are admitted without consuming a queue slot.
        let empty = server.try_submit_batch(Vec::new()).unwrap().wait().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn try_submit_batch_reports_partial_admission_honestly() {
        let (model, catalog, plans) = tiny_server_fixture();
        // Tiny chunks over a tiny queue: an oversized batch will get some
        // chunks in before the queue fills.
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                max_batch_size: 2,
            },
        );
        // Keep submitting the 15-plan batch (8 chunks) until one lands on
        // a full queue mid-way.
        let mut saw_partial = false;
        for _ in 0..200 {
            match server.try_submit_batch(plans.clone()) {
                Ok(t) => {
                    t.wait().unwrap();
                }
                Err(rej) => {
                    assert!(matches!(rej.reason, ServeError::Overloaded));
                    if let Some(answered) = rej.answered {
                        // Admitted prefix + unsent remainder = the batch,
                        // in order.
                        let prefix = answered.wait().unwrap();
                        assert_eq!(prefix.len() + rej.plans.len(), plans.len());
                        let sent = plans.len() - rej.plans.len();
                        assert_eq!(rej.plans, plans[sent..].to_vec());
                        saw_partial = true;
                    } else {
                        assert_eq!(rej.plans, plans);
                    }
                    if saw_partial {
                        break;
                    }
                }
            }
        }
        assert!(saw_partial, "an 8-chunk batch over a 2-slot queue splits");
    }

    #[test]
    fn closed_server_rejections_are_counted() {
        let (model, catalog, plans) = tiny_server_fixture();
        let mut server = PredictionServer::start(model, catalog, ServerConfig::default());
        server.stop_workers();
        let rejected = server.try_submit(plans[0].clone()).unwrap_err();
        assert!(matches!(rejected.reason, ServeError::Closed));
        let rejected_batch = server.try_submit_batch(plans.clone()).unwrap_err();
        assert!(matches!(rejected_batch.reason, ServeError::Closed));
        assert_eq!(rejected_batch.plans, plans);
        assert_eq!(server.metrics().rejected_requests, 2);
    }

    #[test]
    fn dropped_tickets_do_not_wedge_workers_or_leak_queue_slots() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 2,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
        );
        // Clients that give up: submit and immediately drop the ticket —
        // single and batch — more times than the queue holds.
        for plan in plans.iter().cycle().take(12) {
            drop(server.submit(plan.clone()).unwrap());
        }
        drop(server.submit_batch(plans.clone()).unwrap());
        // Workers must still drain the queues and answer new requests.
        let answered = server.predict_blocking(plans[0].clone()).unwrap();
        assert!(answered.runtime_secs.is_finite());
        // Every abandoned request is still fully processed (no wedged
        // worker, no leaked slot): 12 singles + one 15-plan batch + 1.
        // Shards drain independently of the blocking request above, so
        // poll until the abandoned jobs flush through.
        let expected = 12 + plans.len() as u64 + 1;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut metrics = server.metrics();
        while metrics.total_requests != expected && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            metrics = server.metrics();
        }
        assert_eq!(metrics.total_requests, expected);
        assert_eq!(metrics.rejected_requests, 0);
    }

    #[test]
    fn shutdown_reports_final_metrics_and_closes_submission() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(model, catalog, ServerConfig::default());
        for plan in plans.iter().take(6) {
            server.predict_blocking(plan.clone()).unwrap();
        }
        let final_metrics = server.shutdown();
        assert_eq!(final_metrics.total_requests, 6);
        assert!(final_metrics.throughput_qps > 0.0);
        assert!(final_metrics.latency_p50_ms > 0.0);
    }

    #[test]
    fn sharded_server_matches_one_shard_server_bit_for_bit() {
        let (model, catalog, plans) = tiny_server_fixture();
        let one = PredictionServer::start(
            model.clone(),
            catalog.clone(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let many = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        );
        for plan in &plans {
            let a = one.predict_blocking(plan.clone()).unwrap();
            let b = many.predict_blocking(plan.clone()).unwrap();
            assert_eq!(
                a.runtime_secs.to_bits(),
                b.runtime_secs.to_bits(),
                "shard count must not change a single bit"
            );
            assert_eq!(a.fingerprint, b.fingerprint);
        }
        // Batched submission too: chunk routing differs between the two
        // servers, the answers must not.
        let a = one.submit_batch(plans.clone()).unwrap().wait().unwrap();
        let b = many.submit_batch(plans.clone()).unwrap().wait().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.runtime_secs.to_bits(), y.runtime_secs.to_bits());
        }
    }

    #[test]
    fn metrics_expose_one_queue_depth_gauge_per_shard() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        );
        server.predict_blocking(plans[0].clone()).unwrap();
        let snap = server.metrics();
        assert_eq!(snap.shard_queue_depths.len(), 3);
        assert!(
            snap.shard_queue_depths.iter().all(|&d| d == 0),
            "idle server has empty shard queues: {:?}",
            snap.shard_queue_depths
        );
        let text = server.prometheus_text();
        for shard in 0..3 {
            assert!(text.contains(&format!("serve_shard_{shard}_queue_depth")));
        }
    }

    #[test]
    fn a_hot_fingerprint_is_drained_by_the_whole_pool() {
        let (model, catalog, plans) = tiny_server_fixture();
        // Every request is the same plan, so every job routes to one
        // shard whose queue holds just one job (queue_capacity 4 over 4
        // shards); the blocking submits only keep up because idle
        // workers steal from the hot shard.
        let server = Arc::new(PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 4,
                queue_capacity: 4,
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        ));
        let mut tickets = Vec::new();
        for _ in 0..200 {
            tickets.push(server.submit(plans[0].clone()).unwrap());
        }
        let first = tickets.remove(0).wait().unwrap();
        for t in tickets {
            let p = t.wait().unwrap();
            assert_eq!(p.runtime_secs.to_bits(), first.runtime_secs.to_bits());
        }
        assert_eq!(server.metrics().total_requests, 200);
    }

    #[test]
    fn cache_stats_aggregate_across_shards() {
        let (model, catalog, plans) = tiny_server_fixture();
        let server = PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        );
        // Two rounds over every plan: round one misses, round two hits,
        // spread over the per-shard cache slices.
        for _ in 0..2 {
            for plan in &plans {
                server.predict_blocking(plan.clone()).unwrap();
            }
        }
        let stats = server.cache_stats();
        assert_eq!(stats.hits, plans.len() as u64);
        assert_eq!(stats.misses, plans.len() as u64);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.len, plans.len(), "every shape cached exactly once");
        assert_eq!(
            stats.capacity,
            ServerConfig::default().cache_capacity,
            "shard slices sum back to the configured capacity"
        );
        let snap = server.metrics();
        assert_eq!(snap.cache_hits, plans.len() as u64);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let (model, catalog, plans) = tiny_server_fixture();
        let expected: Vec<u64> = plans
            .iter()
            .map(|p| {
                model
                    .predict(&featurize_plan(&catalog, p, model.featurizer))
                    .to_bits()
            })
            .collect();
        let server = Arc::new(PredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 4,
                queue_capacity: 16,
                cache_capacity: 128,
                ..ServerConfig::default()
            },
        ));
        let mut clients = Vec::new();
        for c in 0..4 {
            let server = Arc::clone(&server);
            let plans = plans.clone();
            let expected = expected.clone();
            clients.push(std::thread::spawn(move || {
                for round in 0..5 {
                    let idx = (c + round) % plans.len();
                    let served = server.predict_blocking(plans[idx].clone()).unwrap();
                    assert_eq!(served.runtime_secs.to_bits(), expected[idx]);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.metrics().total_requests, 20);
    }
}
