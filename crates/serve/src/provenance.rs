//! Prediction provenance: per-request records of *where a number came
//! from* — plan fingerprint, model name/version, cache hit, shard
//! placement (home vs. stolen), the predicted value, and the per-stage
//! latency breakdown of the finished trace.
//!
//! Assembly is cold-path only: a [`ProvenanceRecord`] is built when a
//! traced request finishes (the gateway traces every request; the
//! in-process warm path without a trace never allocates here).  Records
//! live in two bounded rings mirroring the flight recorder's retention:
//! a *recent* ring holding the last N traced requests of any class, and
//! a *slow* ring that only retained classes (threshold/tail-slow,
//! failed) enter — so the interesting requests survive bursts of normal
//! traffic that flush the recent ring.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use zsdb_obs::{FlightClass, Trace};
use zsdb_protocol::{ProvenanceRecord, ProvenanceStage};

/// Name of the serving model family, reported in every
/// [`ProvenanceRecord`] (the registry versions models; this names what
/// the versions are *of*).
pub const MODEL_NAME: &str = "zero-shot-cost";

/// Everything the worker knows about a prediction before its trace
/// finishes — the warm half of a [`ProvenanceRecord`], `Copy` so it
/// travels with the prediction through channels without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvenanceSeed {
    /// Structural fingerprint of the predicted plan.
    pub fingerprint: u64,
    /// Version of the model that answered.
    pub model_version: u32,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Shard the plan's fingerprint routes to.
    pub home_shard: u32,
    /// Shard whose worker actually executed the request.
    pub executed_shard: u32,
    /// Whether the request was work-stolen off its home queue.
    pub stolen: bool,
    /// The predicted runtime in seconds.
    pub predicted_secs: f64,
    /// The flight recorder's verdict on this request.
    pub class: FlightClass,
}

impl ProvenanceSeed {
    /// Assemble the full record from this seed and the finished trace.
    pub fn into_record(self, done: &Trace) -> ProvenanceRecord {
        ProvenanceRecord {
            trace_id: done.id,
            fingerprint: self.fingerprint,
            model_name: MODEL_NAME.to_string(),
            model_version: self.model_version,
            cache_hit: self.cache_hit,
            home_shard: self.home_shard,
            executed_shard: self.executed_shard,
            stolen: self.stolen,
            predicted_secs: self.predicted_secs,
            total_ns: done.total_ns,
            flight_class: self.class.label().to_string(),
            stages: done
                .stages
                .iter()
                .map(|s| ProvenanceStage {
                    name: s.name.to_string(),
                    duration_ns: s.duration_ns,
                })
                .collect(),
        }
    }
}

#[derive(Debug)]
struct LogInner {
    recent_capacity: usize,
    slow_capacity: usize,
    /// `(record, insertion sequence)` — the sequence disambiguates
    /// recurring trace ids (newest wins) and orders `recent`.
    recent: Mutex<VecDeque<(ProvenanceRecord, u64)>>,
    slow: Mutex<VecDeque<(ProvenanceRecord, u64)>>,
    seq: std::sync::atomic::AtomicU64,
}

/// Bounded store of assembled [`ProvenanceRecord`]s (see module docs).
/// Cloning shares the store; all methods are cold-path (mutex-guarded).
#[derive(Clone, Debug)]
pub struct ProvenanceLog {
    inner: Arc<LogInner>,
}

impl ProvenanceLog {
    /// Create a log keeping `recent_capacity` records of any class and
    /// `slow_capacity` retained (slow/failed) records.
    pub fn new(recent_capacity: usize, slow_capacity: usize) -> Self {
        ProvenanceLog {
            inner: Arc::new(LogInner {
                recent_capacity: recent_capacity.max(1),
                slow_capacity: slow_capacity.max(1),
                recent: Mutex::new(VecDeque::new()),
                slow: Mutex::new(VecDeque::new()),
                seq: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Assemble and store the record for one finished traced request.
    /// Retained classes additionally enter the slow ring.
    pub fn record(&self, seed: &ProvenanceSeed, done: &Trace) {
        let record = seed.into_record(done);
        let seq = self
            .inner
            .seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if seed.class.retained() {
            let mut slow = self.inner.slow.lock().expect("slow ring poisoned");
            if slow.len() == self.inner.slow_capacity {
                slow.pop_front();
            }
            slow.push_back((record.clone(), seq));
        }
        let mut recent = self.inner.recent.lock().expect("recent ring poisoned");
        if recent.len() == self.inner.recent_capacity {
            recent.pop_front();
        }
        recent.push_back((record, seq));
    }

    /// Look up the provenance of a trace id, checking both rings (a
    /// retained record survives the recent ring's eviction).  When the
    /// same id recurs, the newest record wins.
    pub fn find(&self, trace_id: u64) -> Option<ProvenanceRecord> {
        let mut best: Option<(ProvenanceRecord, u64)> = None;
        for ring in [&self.inner.recent, &self.inner.slow] {
            let ring = ring.lock().expect("provenance ring poisoned");
            for (record, seq) in ring.iter() {
                if record.trace_id == trace_id
                    && best.as_ref().is_none_or(|(_, best_seq)| *seq > *best_seq)
                {
                    best = Some((record.clone(), *seq));
                }
            }
        }
        best.map(|(record, _)| record)
    }

    /// The retained (slow/failed) records, worst — longest `total_ns` —
    /// first, up to `limit`.
    pub fn slow_log(&self, limit: usize) -> Vec<ProvenanceRecord> {
        let ring = self.inner.slow.lock().expect("slow ring poisoned");
        let mut records: Vec<&(ProvenanceRecord, u64)> = ring.iter().collect();
        records.sort_by_key(|(record, seq)| std::cmp::Reverse((record.total_ns, *seq)));
        records
            .into_iter()
            .take(limit)
            .map(|(record, _)| record.clone())
            .collect()
    }

    /// Number of retained records currently in the slow ring.
    pub fn slow_len(&self) -> usize {
        self.inner.slow.lock().expect("slow ring poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_obs::Tracer;

    fn seed(class: FlightClass) -> ProvenanceSeed {
        ProvenanceSeed {
            fingerprint: 0xF00D,
            model_version: 3,
            cache_hit: true,
            home_shard: 1,
            executed_shard: 2,
            stolen: true,
            predicted_secs: 0.125,
            class,
        }
    }

    fn finished(tracer: &Tracer, id: u64, spin: std::time::Duration) -> Trace {
        let mut t = tracer.begin_with_id(id);
        std::thread::sleep(spin);
        t.mark("work");
        tracer.finish(t)
    }

    #[test]
    fn records_carry_the_full_provenance_and_tile_the_latency() {
        let log = ProvenanceLog::new(8, 4);
        let tracer = Tracer::new(8);
        let done = finished(&tracer, 42, std::time::Duration::from_micros(50));
        log.record(&seed(FlightClass::Normal), &done);
        let record = log.find(42).expect("recorded");
        assert_eq!(record.model_name, MODEL_NAME);
        assert_eq!(record.model_version, 3);
        assert!(record.cache_hit);
        assert_eq!((record.home_shard, record.executed_shard), (1, 2));
        assert!(record.stolen);
        assert_eq!(record.predicted_secs.to_bits(), 0.125f64.to_bits());
        assert_eq!(record.flight_class, "normal");
        assert_eq!(
            record.stages.iter().map(|s| s.duration_ns).sum::<u64>(),
            record.total_ns,
            "stages tile the end-to-end latency"
        );
    }

    #[test]
    fn retained_records_survive_recent_ring_churn() {
        let log = ProvenanceLog::new(2, 4);
        let tracer = Tracer::new(16);
        let slow = finished(&tracer, 1, std::time::Duration::from_micros(10));
        log.record(&seed(FlightClass::SlowThreshold), &slow);
        for id in 2..=10 {
            let done = finished(&tracer, id, std::time::Duration::ZERO);
            log.record(&seed(FlightClass::Normal), &done);
        }
        // Flushed out of the 2-slot recent ring, still found via slow.
        let kept = log.find(1).expect("retained record survives");
        assert_eq!(kept.flight_class, "slow_threshold");
        assert_eq!(log.slow_len(), 1);
        assert!(log.find(5).is_none(), "normal records age out");
    }

    #[test]
    fn slow_log_is_worst_first_and_bounded() {
        let log = ProvenanceLog::new(16, 2);
        let tracer = Tracer::new(16);
        for (id, micros) in [(1u64, 30u64), (2, 10), (3, 20)] {
            let done = finished(&tracer, id, std::time::Duration::from_micros(micros));
            log.record(&seed(FlightClass::SlowTail), &done);
        }
        let slow = log.slow_log(10);
        assert_eq!(slow.len(), 2, "slow ring bounded at 2");
        assert!(slow[0].total_ns >= slow[1].total_ns, "worst first");
        assert!(
            slow.iter().all(|r| r.trace_id != 1),
            "oldest entry evicted at capacity"
        );
    }

    #[test]
    fn recurring_trace_ids_answer_the_newest_record() {
        let log = ProvenanceLog::new(4, 4);
        let tracer = Tracer::new(8);
        let first = finished(&tracer, 9, std::time::Duration::ZERO);
        let mut old = seed(FlightClass::Normal);
        old.model_version = 1;
        log.record(&old, &first);
        let second = finished(&tracer, 9, std::time::Duration::ZERO);
        let mut new = seed(FlightClass::Normal);
        new.model_version = 2;
        log.record(&new, &second);
        assert_eq!(log.find(9).expect("resident").model_version, 2);
    }
}
