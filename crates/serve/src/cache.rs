//! Thread-safe LRU cache of featurized plan graphs.
//!
//! Serving workers key the cache by the **model version** they have
//! pinned plus the structural
//! [`plan_fingerprint`](zsdb_core::fingerprint::plan_fingerprint) of an
//! incoming plan, so repeated query shapes skip re-featurization and go
//! straight to model inference.  Qualifying every entry by the version
//! that featurized it makes hot-swaps race-free by construction: a
//! worker that featurized against the old model can only ever insert —
//! and hit — entries under the old version's key, so a graph featurized
//! with one model's `FeaturizerConfig` is never served under another,
//! regardless of how inserts interleave with a concurrent
//! [`swap_model`](crate::PredictionServer::swap_model).  Hit/miss
//! counters feed the serving metrics.
//!
//! Recency bookkeeping is a **slab + intrusive doubly-linked list**: the
//! entries live in a preallocated `Vec` of slots chained into LRU order
//! by index, and the key → slot map is sized for `capacity` up front.
//! A cache *hit* therefore performs **zero heap allocations** — a hash
//! lookup, an `Arc` clone and four index writes to splice the slot to
//! the front of the list.  (The previous design kept recency in a
//! `BTreeMap<tick, key>`, which allocated a fresh tree node on every
//! single hit — measurable at sharded-server request rates, and exactly
//! the kind of steady-state allocation the warm-path regression test
//! forbids.)

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use zsdb_core::features::PlanGraph;

/// Cache key: the model version the graph was featurized for, plus the
/// structural plan fingerprint.
type VersionedKey = (u32, u64);

/// Sentinel slot index: "no neighbour" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One slab slot: the entry plus its intrusive LRU-list links.  Freed
/// slots drop their graph (`None`) but stay in the slab for reuse.
struct Slot {
    key: VersionedKey,
    graph: Option<Arc<PlanGraph>>,
    prev: usize,
    next: usize,
}

/// Interior LRU bookkeeping: a slab of slots threaded into a doubly
/// linked recency list (`head` = most recent, `tail` = eviction victim),
/// plus a key → slot map preallocated for the full capacity so steady-
/// state operation never rehashes.
struct LruInner {
    map: HashMap<VersionedKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruInner {
    /// Remove slot `i` from the recency list (it keeps its slab slot).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    /// Splice slot `i` in as the most recently used entry.
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Mark slot `i` as most recently used.
    fn touch(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }
}

/// A bounded, thread-safe LRU cache mapping (model version, plan
/// fingerprint) pairs to featurized graphs.
pub struct FeatureCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl FeatureCache {
    /// Create a cache holding at most `capacity` graphs (a capacity of 0
    /// disables caching: every lookup is a miss and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        FeatureCache {
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                slots: Vec::with_capacity(capacity),
                free: Vec::with_capacity(capacity),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every cached graph (hit/miss counters are lifetime counters
    /// and survive).  Correctness never depends on this — entries are
    /// version-qualified — but the serving layer calls it on every model
    /// hot-swap as memory hygiene: the old version's entries are dead
    /// weight the LRU would otherwise evict one miss at a time.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.map.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        for i in 0..inner.slots.len() {
            inner.slots[i].graph = None;
            inner.slots[i].prev = NIL;
            inner.slots[i].next = NIL;
            inner.free.push(i);
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a fingerprint under a model version, counting a hit or
    /// miss.  A hit allocates nothing.
    pub fn get(&self, version: u32, key: u64) -> Option<Arc<PlanGraph>> {
        let full_key = (version, key);
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        match inner.map.get(&full_key).copied() {
            Some(slot) => {
                let graph = inner.slots[slot]
                    .graph
                    .clone()
                    .expect("mapped cache slot is occupied");
                inner.touch(slot);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(graph)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a graph under a model version, evicting the least recently
    /// used entry if the cache is full.  Re-inserting an existing key
    /// only refreshes its recency; the cached graph is kept.
    pub fn insert(&self, version: u32, key: u64, graph: Arc<PlanGraph>) {
        if self.capacity == 0 {
            return;
        }
        let full_key = (version, key);
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        if let Some(slot) = inner.map.get(&full_key).copied() {
            inner.touch(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL, "full cache has a tail");
            inner.unlink(victim);
            let victim_key = inner.slots[victim].key;
            inner.map.remove(&victim_key);
            inner.slots[victim].graph = None;
            inner.free.push(victim);
        }
        let slot = match inner.free.pop() {
            Some(i) => {
                inner.slots[i].key = full_key;
                inner.slots[i].graph = Some(graph);
                i
            }
            None => {
                inner.slots.push(Slot {
                    key: full_key,
                    graph: Some(graph),
                    prev: NIL,
                    next: NIL,
                });
                inner.slots.len() - 1
            }
        };
        inner.push_front(slot);
        inner.map.insert(full_key, slot);
    }

    /// Fetch the graph for `(version, key)`, computing and inserting it
    /// on a miss.  Returns the graph and whether the lookup was a cache
    /// hit.
    ///
    /// The featurization closure runs *outside* the cache lock, so
    /// concurrent misses never serialise on each other; two threads
    /// missing the same key may both featurize, with one result winning —
    /// harmless, because featurization is deterministic.
    pub fn get_or_insert_with<F>(
        &self,
        version: u32,
        key: u64,
        featurize: F,
    ) -> (Arc<PlanGraph>, bool)
    where
        F: FnOnce() -> PlanGraph,
    {
        if let Some(graph) = self.get(version, key) {
            return (graph, true);
        }
        let graph = Arc::new(featurize());
        self.insert(version, key, Arc::clone(&graph));
        (graph, false)
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        let len = self.inner.lock().expect("feature cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to featurize.
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries.
    pub capacity: usize,
    /// Times the cache was wholesale invalidated (model hot-swaps).
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another (shard's) stats into this one: hits, misses, lengths
    /// and capacities are **summed** — so [`CacheStats::hit_rate`] over
    /// the merge divides total hits by total lookups, never averaging
    /// per-shard rates — while `invalidations` takes the **max**, because
    /// a model hot-swap invalidates every shard cache at once and counts
    /// as one logical invalidation of the (sharded) cache.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.len += other.len;
        self.capacity += other.capacity;
        self.invalidations = self.invalidations.max(other.invalidations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(tag: f64) -> PlanGraph {
        use zsdb_core::features::{GraphNode, NodeKind};
        PlanGraph {
            nodes: vec![GraphNode {
                kind: NodeKind::PlanOperator,
                features: vec![tag; NodeKind::PlanOperator.feature_dim()],
                children: vec![],
            }],
            root: 0,
            runtime_secs: None,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = FeatureCache::new(4);
        assert!(cache.get(1, 1).is_none());
        cache.insert(1, 1, Arc::new(graph(1.0)));
        assert!(cache.get(1, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let cache = FeatureCache::new(2);
        cache.insert(1, 1, Arc::new(graph(1.0)));
        cache.insert(1, 2, Arc::new(graph(2.0)));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, 1).is_some());
        cache.insert(1, 3, Arc::new(graph(3.0)));
        assert!(cache.get(1, 1).is_some());
        assert!(
            cache.get(1, 2).is_none(),
            "LRU entry should have been evicted"
        );
        assert!(cache.get(1, 3).is_some());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn eviction_churn_reuses_slab_slots() {
        // Insert far more distinct keys than the capacity: the slab must
        // never grow past `capacity` slots — every eviction frees a slot
        // the next insert reuses — and LRU order must stay exact.
        let cache = FeatureCache::new(3);
        for key in 0..50u64 {
            cache.insert(1, key, Arc::new(graph(key as f64)));
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 3);
        for key in 47..50u64 {
            let g = cache.get(1, key).expect("newest entries survive");
            assert_eq!(g.nodes[0].features[0], key as f64);
        }
        assert!(cache.get(1, 46).is_none(), "older entries were evicted");
    }

    #[test]
    fn get_or_insert_with_featurizes_once_per_shape() {
        let cache = FeatureCache::new(8);
        let mut featurizations = 0;
        for _ in 0..5 {
            let (g, _hit) = cache.get_or_insert_with(1, 42, || {
                featurizations += 1;
                graph(42.0)
            });
            assert_eq!(g.nodes[0].features[0], 42.0);
        }
        assert_eq!(featurizations, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn entries_are_scoped_to_their_model_version() {
        let cache = FeatureCache::new(8);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(1.0));
        assert!(!hit);
        // The same fingerprint under another version is a distinct
        // entry: a late insert from a worker still holding the old
        // version can never be served to the new one.
        let (g, hit) = cache.get_or_insert_with(2, 7, || graph(2.0));
        assert!(!hit, "version 2 must not see version 1's graph");
        assert_eq!(g.nodes[0].features[0], 2.0);
        let (g, hit) = cache.get_or_insert_with(1, 7, || graph(9.0));
        assert!(hit, "version 1's own entry is still there");
        assert_eq!(g.nodes[0].features[0], 1.0);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn invalidate_clears_entries_but_keeps_lifetime_counters() {
        let cache = FeatureCache::new(8);
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(1.0));
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(1.0));
        assert!(hit);
        cache.invalidate();
        let stats = cache.stats();
        assert_eq!(stats.len, 0, "entries dropped");
        assert_eq!(stats.hits, 1, "lifetime hits survive");
        assert_eq!(stats.invalidations, 1);
        // The same key misses again and repopulates cleanly.
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(2.0));
        assert!(!hit);
        let (g, hit) = cache.get_or_insert_with(1, 1, || graph(3.0));
        assert!(hit);
        assert_eq!(g.nodes[0].features[0], 2.0, "post-invalidation value wins");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = FeatureCache::new(0);
        assert_eq!(cache.capacity(), 0);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(7.0));
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(7.0));
        assert!(!hit);
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn merged_stats_sum_lookups_before_dividing() {
        // Shard A: 9 hits / 1 miss (rate 0.9); shard B: 0 hits / 30
        // misses (rate 0.0).  Summing lookups first gives 9/40 = 0.225;
        // averaging the per-shard rates would claim 0.45 — the asymmetric
        // traffic makes the two definitions visibly disagree.
        let a = CacheStats {
            hits: 9,
            misses: 1,
            len: 4,
            capacity: 16,
            invalidations: 1,
        };
        let b = CacheStats {
            hits: 0,
            misses: 30,
            len: 2,
            capacity: 16,
            invalidations: 1,
        };
        let mut merged = CacheStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.hits, 9);
        assert_eq!(merged.misses, 31);
        assert!((merged.hit_rate() - 9.0 / 40.0).abs() < 1e-12);
        let averaged = (a.hit_rate() + b.hit_rate()) / 2.0;
        assert!(
            (merged.hit_rate() - averaged).abs() > 0.1,
            "summed-then-divided must differ from per-shard averaging here"
        );
        assert_eq!(merged.len, 6);
        assert_eq!(merged.capacity, 32);
        assert_eq!(
            merged.invalidations, 1,
            "one hot-swap invalidating every shard is one logical invalidation"
        );
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(FeatureCache::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = (t * 31 + i) % 100;
                    let (g, _) = cache.get_or_insert_with(1, key, || graph(key as f64));
                    assert_eq!(g.nodes[0].features[0], key as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert!(stats.len <= 64);
    }
}
