//! Thread-safe LRU cache of featurized plan graphs.
//!
//! Serving workers key the cache by the **model version** they have
//! pinned plus the structural
//! [`plan_fingerprint`](zsdb_core::fingerprint::plan_fingerprint) of an
//! incoming plan, so repeated query shapes skip re-featurization and go
//! straight to model inference.  Qualifying every entry by the version
//! that featurized it makes hot-swaps race-free by construction: a
//! worker that featurized against the old model can only ever insert —
//! and hit — entries under the old version's key, so a graph featurized
//! with one model's `FeaturizerConfig` is never served under another,
//! regardless of how inserts interleave with a concurrent
//! [`swap_model`](crate::PredictionServer::swap_model).  Hit/miss
//! counters feed the serving metrics.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use zsdb_core::features::PlanGraph;

/// Cache key: the model version the graph was featurized for, plus the
/// structural plan fingerprint.
type VersionedKey = (u32, u64);

/// Interior LRU bookkeeping: recency is a monotonically increasing tick;
/// the `BTreeMap` orders keys by last use so eviction pops its first
/// (oldest) entry in `O(log n)`.
struct LruInner {
    entries: HashMap<VersionedKey, (Arc<PlanGraph>, u64)>,
    by_tick: BTreeMap<u64, VersionedKey>,
    next_tick: u64,
}

impl LruInner {
    fn touch(&mut self, key: VersionedKey) {
        if let Some((_, tick)) = self.entries.get_mut(&key) {
            self.by_tick.remove(tick);
            *tick = self.next_tick;
            self.by_tick.insert(self.next_tick, key);
            self.next_tick += 1;
        }
    }
}

/// A bounded, thread-safe LRU cache mapping (model version, plan
/// fingerprint) pairs to featurized graphs.
pub struct FeatureCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl FeatureCache {
    /// Create a cache holding at most `capacity` graphs (a capacity of 0
    /// disables caching: every lookup is a miss and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        FeatureCache {
            inner: Mutex::new(LruInner {
                entries: HashMap::new(),
                by_tick: BTreeMap::new(),
                next_tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Drop every cached graph (hit/miss counters are lifetime counters
    /// and survive).  Correctness never depends on this — entries are
    /// version-qualified — but the serving layer calls it on every model
    /// hot-swap as memory hygiene: the old version's entries are dead
    /// weight the LRU would otherwise evict one miss at a time.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.entries.clear();
        inner.by_tick.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a fingerprint under a model version, counting a hit or
    /// miss.
    pub fn get(&self, version: u32, key: u64) -> Option<Arc<PlanGraph>> {
        let full_key = (version, key);
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        match inner.entries.get(&full_key).map(|(g, _)| Arc::clone(g)) {
            Some(graph) => {
                inner.touch(full_key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(graph)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a graph under a model version, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&self, version: u32, key: u64, graph: Arc<PlanGraph>) {
        if self.capacity == 0 {
            return;
        }
        let full_key = (version, key);
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        if inner.entries.contains_key(&full_key) {
            inner.touch(full_key);
            return;
        }
        if inner.entries.len() >= self.capacity {
            if let Some((_, oldest_key)) = inner.by_tick.pop_first() {
                inner.entries.remove(&oldest_key);
            }
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.entries.insert(full_key, (graph, tick));
        inner.by_tick.insert(tick, full_key);
    }

    /// Fetch the graph for `(version, key)`, computing and inserting it
    /// on a miss.  Returns the graph and whether the lookup was a cache
    /// hit.
    ///
    /// The featurization closure runs *outside* the cache lock, so
    /// concurrent misses never serialise on each other; two threads
    /// missing the same key may both featurize, with one result winning —
    /// harmless, because featurization is deterministic.
    pub fn get_or_insert_with<F>(
        &self,
        version: u32,
        key: u64,
        featurize: F,
    ) -> (Arc<PlanGraph>, bool)
    where
        F: FnOnce() -> PlanGraph,
    {
        if let Some(graph) = self.get(version, key) {
            return (graph, true);
        }
        let graph = Arc::new(featurize());
        self.insert(version, key, Arc::clone(&graph));
        (graph, false)
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .inner
            .lock()
            .expect("feature cache poisoned")
            .entries
            .len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to featurize.
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries.
    pub capacity: usize,
    /// Times the cache was wholesale invalidated (model hot-swaps).
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(tag: f64) -> PlanGraph {
        use zsdb_core::features::{GraphNode, NodeKind};
        PlanGraph {
            nodes: vec![GraphNode {
                kind: NodeKind::PlanOperator,
                features: vec![tag; NodeKind::PlanOperator.feature_dim()],
                children: vec![],
            }],
            root: 0,
            runtime_secs: None,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = FeatureCache::new(4);
        assert!(cache.get(1, 1).is_none());
        cache.insert(1, 1, Arc::new(graph(1.0)));
        assert!(cache.get(1, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let cache = FeatureCache::new(2);
        cache.insert(1, 1, Arc::new(graph(1.0)));
        cache.insert(1, 2, Arc::new(graph(2.0)));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, 1).is_some());
        cache.insert(1, 3, Arc::new(graph(3.0)));
        assert!(cache.get(1, 1).is_some());
        assert!(
            cache.get(1, 2).is_none(),
            "LRU entry should have been evicted"
        );
        assert!(cache.get(1, 3).is_some());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn get_or_insert_with_featurizes_once_per_shape() {
        let cache = FeatureCache::new(8);
        let mut featurizations = 0;
        for _ in 0..5 {
            let (g, _hit) = cache.get_or_insert_with(1, 42, || {
                featurizations += 1;
                graph(42.0)
            });
            assert_eq!(g.nodes[0].features[0], 42.0);
        }
        assert_eq!(featurizations, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn entries_are_scoped_to_their_model_version() {
        let cache = FeatureCache::new(8);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(1.0));
        assert!(!hit);
        // The same fingerprint under another version is a distinct
        // entry: a late insert from a worker still holding the old
        // version can never be served to the new one.
        let (g, hit) = cache.get_or_insert_with(2, 7, || graph(2.0));
        assert!(!hit, "version 2 must not see version 1's graph");
        assert_eq!(g.nodes[0].features[0], 2.0);
        let (g, hit) = cache.get_or_insert_with(1, 7, || graph(9.0));
        assert!(hit, "version 1's own entry is still there");
        assert_eq!(g.nodes[0].features[0], 1.0);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn invalidate_clears_entries_but_keeps_lifetime_counters() {
        let cache = FeatureCache::new(8);
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(1.0));
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(1.0));
        assert!(hit);
        cache.invalidate();
        let stats = cache.stats();
        assert_eq!(stats.len, 0, "entries dropped");
        assert_eq!(stats.hits, 1, "lifetime hits survive");
        assert_eq!(stats.invalidations, 1);
        // The same key misses again and repopulates cleanly.
        let (_, hit) = cache.get_or_insert_with(1, 1, || graph(2.0));
        assert!(!hit);
        let (g, hit) = cache.get_or_insert_with(1, 1, || graph(3.0));
        assert!(hit);
        assert_eq!(g.nodes[0].features[0], 2.0, "post-invalidation value wins");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = FeatureCache::new(0);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(7.0));
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(1, 7, || graph(7.0));
        assert!(!hit);
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(FeatureCache::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = (t * 31 + i) % 100;
                    let (g, _) = cache.get_or_insert_with(1, key, || graph(key as f64));
                    assert_eq!(g.nodes[0].features[0], key as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert!(stats.len <= 64);
    }
}
