//! TCP front-end over the prediction worker pool: the network half of
//! the serving stack.
//!
//! [`NetServer`] listens on a socket and speaks the framed
//! [`zsdb_protocol`] wire protocol.  Design:
//!
//! * **Thread-per-connection, two threads each** — a *reader* decodes
//!   request frames off the socket and a *responder* is the sole socket
//!   writer, so responses never interleave mid-frame.  Requests are
//!   pipelined: the reader admits work without waiting for earlier
//!   answers, and the client matches responses by request id.
//! * **Tenant handshake** — the first frame must be `Hello` carrying a
//!   tenant id.  Unknown tenants (when no default policy is configured)
//!   and empty tenant ids are turned away with `Unauthenticated` before
//!   any prediction work is possible.
//! * **Two-level admission control** — each request first charges the
//!   tenant's in-flight quota ([`TenantPolicy::max_in_flight`], answered
//!   with `QuotaExceeded` when full), then enters the worker pool
//!   through the non-blocking `try_submit` path (answered with
//!   `Overloaded` when the bounded queue sheds it).  The reader thread
//!   never blocks on the queue, so one overloaded tenant cannot stall
//!   another tenant's socket.
//! * **Socket-driven batching** — when several `Predict` frames are
//!   already buffered on a connection (a pipelining client), the reader
//!   coalesces up to [`NetServerConfig::max_coalesce`] of them into one
//!   [`submit_batch`](crate::PredictionServer::submit_batch)-style group
//!   answered by a single batched forward pass.  Coalescing never reads
//!   the socket itself — it drains the frames a blocking read already
//!   pulled into the decode buffer — so the reader can never perturb the
//!   responder's writes.  The group size is clamped to the worker pool's
//!   `max_batch_size`, so a coalesced group is exactly one bounded-queue
//!   slot and its admission is all-or-nothing.  Predictions stay
//!   bit-identical to the in-process path either way.
//! * **Per-tenant metrics** — admitted/completed/rejected counts (quota
//!   and shed separately), in-flight gauge and latency percentiles per
//!   tenant, served over the wire via the `Metrics` op.

use crate::error::ServeError;
use crate::metrics::{
    percentile_of_sorted, STAGE_ADMISSION, STAGE_CACHE_LOOKUP, STAGE_FEATURIZE, STAGE_FORWARD,
    STAGE_QUEUE_WAIT, STAGE_RESPOND,
};
use crate::provenance::ProvenanceSeed;
use crate::server::{BatchPredictionTicket, PredictionServer, PredictionTicket};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zsdb_engine::PlanNode;
use zsdb_obs::{ActiveTrace, LatencyWindow, Trace, Tracer};
use zsdb_protocol::{
    decode_frame, encode_frame, ErrorCode, ErrorResponse, Frame, GatewayMetrics, HealthResponse,
    HelloAck, Message, ProtocolError, TenantMetrics, WirePrediction, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

/// Per-tenant latency samples retained for the percentile estimates
/// (bounded ring, like the server-wide window but smaller).
const TENANT_LATENCY_WINDOW: usize = 8_192;

/// The request stages broken down per tenant (exposition order).
const TENANT_STAGES: [&str; 6] = [
    STAGE_ADMISSION,
    STAGE_QUEUE_WAIT,
    STAGE_CACHE_LOOKUP,
    STAGE_FEATURIZE,
    STAGE_FORWARD,
    STAGE_RESPOND,
];

fn tenant_stage_index(name: &str) -> Option<usize> {
    TENANT_STAGES.iter().position(|&s| s == name)
}

/// Admission policy of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Maximum requests the tenant may have in flight (admitted but not
    /// yet answered) across all of its connections.  Requests beyond the
    /// quota are rejected with `QuotaExceeded` — retryable backpressure,
    /// not an error.
    pub max_in_flight: u64,
}

/// Tunables of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Explicit per-tenant policies.
    pub tenants: HashMap<String, TenantPolicy>,
    /// Policy applied to tenants without an explicit entry; `None`
    /// rejects unknown tenants at the handshake (`Unauthenticated`).
    pub default_policy: Option<TenantPolicy>,
    /// Most pipelined `Predict` frames coalesced into one batched
    /// submission (clamped to the worker pool's `max_batch_size` at
    /// startup, so a coalesced group is one atomic queue slot).
    pub max_coalesce: usize,
    /// How long a fresh connection may take to send its `Hello`.
    pub handshake_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            tenants: HashMap::new(),
            default_policy: Some(TenantPolicy {
                max_in_flight: 1024,
            }),
            max_coalesce: 32,
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

impl NetServerConfig {
    /// Add (or replace) an explicit policy for `tenant`.
    pub fn with_tenant(mut self, tenant: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenants.insert(tenant.into(), policy);
        self
    }
}

/// Live accounting of one tenant, shared by all its connections.
struct TenantState {
    name: String,
    quota: u64,
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_shed: AtomicU64,
    in_flight: AtomicU64,
    /// Recent latencies (striped bounded rings) + lifetime min/max.
    latencies: LatencyWindow,
    /// Per-stage cumulative nanoseconds / sample counts, indexed by
    /// [`TENANT_STAGES`] — the tenant's latency-breakdown exposition.
    stage_ns: [AtomicU64; TENANT_STAGES.len()],
    stage_count: [AtomicU64; TENANT_STAGES.len()],
}

impl TenantState {
    fn new(name: String, quota: u64) -> Self {
        TenantState {
            name,
            quota,
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_shed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latencies: LatencyWindow::new(TENANT_LATENCY_WINDOW),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_count: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Charge `n` requests against the in-flight quota; `false` leaves
    /// the gauge untouched.
    fn try_reserve(&self, n: u64) -> bool {
        let prev = self.in_flight.fetch_add(n, Ordering::Relaxed);
        if prev.saturating_add(n) > self.quota {
            self.in_flight.fetch_sub(n, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    fn release(&self, n: u64) {
        self.in_flight.fetch_sub(n, Ordering::Relaxed);
    }

    fn record_latency(&self, latency: Duration, count: usize) {
        let ns = latency.as_nanos() as u64;
        for _ in 0..count {
            self.latencies.record(ns);
        }
    }

    /// Fold a finished trace's stages into the tenant's breakdown.
    fn record_stages(&self, trace: &Trace) {
        for stage in &trace.stages {
            if let Some(i) = tenant_stage_index(stage.name) {
                self.stage_ns[i].fetch_add(stage.duration_ns, Ordering::Relaxed);
                self.stage_count[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Wire-format snapshot.  Percentiles are milliseconds and *finite*:
    /// the wire encoding maps non-finite floats to `null`, so an empty
    /// sample reports `0.0` rather than `NaN`.
    fn wire_metrics(&self) -> TenantMetrics {
        let window = self.latencies.snapshot();
        let mut ms: Vec<f64> = window.samples.iter().map(|&ns| ns as f64 / 1e6).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        TenantMetrics {
            tenant: self.name.clone(),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_shed: self.rejected_shed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            quota: self.quota,
            latency_p50_ms: finite_or_zero(percentile_of_sorted(&ms, 50.0)),
            latency_p95_ms: finite_or_zero(percentile_of_sorted(&ms, 95.0)),
            latency_p99_ms: finite_or_zero(percentile_of_sorted(&ms, 99.0)),
            latency_min_ms: window.min.map_or(0.0, |ns| ns as f64 / 1e6),
            latency_max_ms: if window.count == 0 {
                0.0
            } else {
                window.max as f64 / 1e6
            },
        }
    }
}

/// The wire carries only finite floats (non-finite encodes as `null` and
/// fails decoding into `f64`); empty-sample `NaN` percentiles become 0.
fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn error_code_of(reason: &ServeError) -> ErrorCode {
    match reason {
        ServeError::Overloaded => ErrorCode::Overloaded,
        ServeError::Closed => ErrorCode::Closed,
        _ => ErrorCode::Internal,
    }
}

fn error_frame(request_id: u64, code: ErrorCode, message: impl Into<String>) -> Frame {
    Frame::new(
        request_id,
        Message::Error(ErrorResponse {
            code,
            message: message.into(),
        }),
    )
}

fn wire_prediction(p: &crate::Prediction) -> WirePrediction {
    WirePrediction {
        runtime_secs: p.runtime_secs,
        fingerprint: p.fingerprint,
        cache_hit: p.cache_hit,
        server_latency_micros: p.latency.as_micros() as u64,
        model_version: p.model_version,
    }
}

/// State shared by the acceptor, every connection thread and the
/// [`NetServer`] handle.
struct NetShared {
    server: PredictionServer,
    config: NetServerConfig,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    shutting_down: AtomicBool,
    /// Clones of live connection sockets, for forced close on shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of live connection threads.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl NetShared {
    fn tenant_state(&self, tenant: &str) -> Option<Arc<TenantState>> {
        let quota = match self.config.tenants.get(tenant) {
            Some(policy) => policy.max_in_flight,
            None => self.config.default_policy?.max_in_flight,
        };
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        Some(Arc::clone(
            tenants
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(TenantState::new(tenant.to_string(), quota))),
        ))
    }

    fn gateway_metrics(&self) -> GatewayMetrics {
        let snap = self.server.metrics();
        let mut tenants: Vec<TenantMetrics> = self
            .tenants
            .lock()
            .expect("tenant table poisoned")
            .values()
            .map(|t| t.wire_metrics())
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        GatewayMetrics {
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            server_total_requests: snap.total_requests,
            server_rejected_requests: snap.rejected_requests,
            server_throughput_qps: finite_or_zero(snap.throughput_qps),
            server_latency_p50_ms: finite_or_zero(snap.latency_p50_ms),
            server_latency_p95_ms: finite_or_zero(snap.latency_p95_ms),
            server_latency_p99_ms: finite_or_zero(snap.latency_p99_ms),
            model_version: self.server.model_version(),
            tenants,
            uptime_seconds: snap.uptime_seconds,
            queue_depth: snap.queue_depth,
            server_latency_min_ms: finite_or_zero(snap.latency_min_ms),
            server_latency_max_ms: finite_or_zero(snap.latency_max_ms),
            window_occupancy: snap.window_occupancy as u64,
            window_capacity: snap.window_capacity as u64,
        }
    }

    /// Prometheus text exposition: the worker pool's metrics plus gateway
    /// connection gauges and the per-tenant latency/stage breakdowns.
    fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.server.prometheus_text();
        let _ = writeln!(out, "# TYPE zsdb_gateway_connections_total counter");
        let _ = writeln!(
            out,
            "zsdb_gateway_connections_total {}",
            self.connections_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE zsdb_gateway_connections_active gauge");
        let _ = writeln!(
            out,
            "zsdb_gateway_connections_active {}",
            self.connections_active.load(Ordering::Relaxed)
        );
        let tenants: Vec<Arc<TenantState>> = self
            .tenants
            .lock()
            .expect("tenant table poisoned")
            .values()
            .cloned()
            .collect();
        let _ = writeln!(out, "# TYPE zsdb_tenant_completed_total counter");
        let _ = writeln!(out, "# TYPE zsdb_tenant_stage_ns_total counter");
        let _ = writeln!(out, "# TYPE zsdb_tenant_stage_samples_total counter");
        for tenant in tenants {
            let label = escape_label(&tenant.name);
            let _ = writeln!(
                out,
                "zsdb_tenant_completed_total{{tenant=\"{label}\"}} {}",
                tenant.completed.load(Ordering::Relaxed)
            );
            for (i, stage) in TENANT_STAGES.iter().enumerate() {
                let count = tenant.stage_count[i].load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "zsdb_tenant_stage_ns_total{{tenant=\"{label}\",stage=\"{stage}\"}} {}",
                    tenant.stage_ns[i].load(Ordering::Relaxed)
                );
                let _ = writeln!(
                    out,
                    "zsdb_tenant_stage_samples_total{{tenant=\"{label}\",stage=\"{stage}\"}} {count}",
                );
            }
        }
        out
    }
}

/// Escape a string for use as a Prometheus label value (backslash, quote
/// and newline per the text-exposition grammar).
fn escape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// A running TCP gateway in front of a [`PredictionServer`].
///
/// ```no_run
/// use zsdb_serve::{NetServer, NetServerConfig, PredictionServer, ServerConfig};
/// # fn demo(model: zsdb_core::train::TrainedModel, catalog: zsdb_catalog::SchemaCatalog)
/// # -> std::io::Result<()> {
/// let pool = PredictionServer::start(model, catalog, ServerConfig::default());
/// let gateway = NetServer::start("127.0.0.1:0", pool, NetServerConfig::default())?;
/// println!("serving on {}", gateway.local_addr());
/// # Ok(()) }
/// ```
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start accepting connections in front of `server`
    /// (the gateway takes ownership; reach it through
    /// [`NetServer::server`] for hot-swaps).
    pub fn start(
        addr: impl ToSocketAddrs,
        server: PredictionServer,
        mut config: NetServerConfig,
    ) -> io::Result<NetServer> {
        // Clamp so a coalesced group is exactly one bounded-queue chunk,
        // making its admission all-or-nothing.
        config.max_coalesce = config.max_coalesce.clamp(1, server.config().max_batch_size);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            config,
            tenants: Mutex::new(HashMap::new()),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("zsdb-net-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(NetServer {
            local_addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address the gateway is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The worker pool behind the gateway (e.g. for
    /// [`swap_model`](PredictionServer::swap_model)).
    pub fn server(&self) -> &PredictionServer {
        &self.shared.server
    }

    /// Gateway-wide metrics including every tenant seen so far — the
    /// same payload the `Metrics` wire op serves.
    pub fn gateway_metrics(&self) -> GatewayMetrics {
        self.shared.gateway_metrics()
    }

    /// Prometheus text exposition of the full gateway (worker pool,
    /// connection gauges, per-tenant latency/stage breakdowns) — the same
    /// payload the `MetricsText` wire op serves.
    pub fn prometheus_text(&self) -> String {
        self.shared.prometheus_text()
    }

    /// The trace collector of the underlying worker pool: finished
    /// per-request traces (locatable by the trace id echoed on response
    /// frames) and standalone events.
    pub fn tracer(&self) -> &Tracer {
        self.shared.server.tracer()
    }

    /// Stop accepting, force-close live connections, join every
    /// connection thread and return the final metrics.  The inner
    /// [`PredictionServer`] shuts down when the returned value and all
    /// clones are dropped.
    pub fn shutdown(mut self) -> GatewayMetrics {
        self.stop();
        self.shared.gateway_metrics()
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let conns: Vec<TcpStream> = self
            .shared
            .conns
            .lock()
            .expect("connection table poisoned")
            .drain()
            .map(|(_, s)| s)
            .collect();
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .handles
            .lock()
            .expect("connection handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    for incoming in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        // A socket we cannot clone cannot be registered for forced close,
        // and shutdown() would then block joining a connection it has no
        // way to interrupt — refuse service instead.
        let clone = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let conn_id = shared.connections_total.fetch_add(1, Ordering::Relaxed);
        shared
            .conns
            .lock()
            .expect("connection table poisoned")
            .insert(conn_id, clone);
        shared.connections_active.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("zsdb-net-conn-{conn_id}"))
            .spawn(move || {
                let _ = serve_connection(&conn_shared, stream);
                conn_shared
                    .conns
                    .lock()
                    .expect("connection table poisoned")
                    .remove(&conn_id);
                conn_shared
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(handle) => {
                let mut handles = shared.handles.lock().expect("connection handles poisoned");
                // Reap finished connection threads as we go, or a
                // long-lived gateway accumulates one handle per
                // connection ever served.
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        let _ = handles.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                handles.push(handle);
            }
            Err(_) => {
                shared
                    .conns
                    .lock()
                    .expect("connection table poisoned")
                    .remove(&conn_id);
                shared.connections_active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Work the responder thread turns into response frames, in admission
/// order.
enum Outbound {
    /// A frame that needs no waiting (errors, metrics, health).
    Ready(Frame),
    /// One admitted single prediction.
    Single {
        id: u64,
        ticket: PredictionTicket,
        tenant: Arc<TenantState>,
        accepted: Instant,
        /// Trace id echoed on the response frame (0 = untraced wire).
        trace_id: u64,
    },
    /// A coalesced group of pipelined singles answered by one batch
    /// ticket — one `PredictOk` per original request id.
    Coalesced {
        ids: Vec<u64>,
        ticket: BatchPredictionTicket,
        tenant: Arc<TenantState>,
        accepted: Instant,
        /// The group shares one batched span, so every member's response
        /// echoes the group's trace id (0 = untraced wire).
        trace_id: u64,
    },
    /// One admitted client batch answered as `PredictBatchOk`.
    Batch {
        id: u64,
        n: u64,
        ticket: BatchPredictionTicket,
        tenant: Arc<TenantState>,
        accepted: Instant,
        /// Trace id echoed on the response frame (0 = untraced wire).
        trace_id: u64,
    },
    /// A client batch whose admission failed part-way: the admitted
    /// prefix still runs (and must be awaited for honest accounting)
    /// but the client gets a retryable error for the whole batch.
    BatchFailed {
        id: u64,
        admitted: u64,
        answered: Option<BatchPredictionTicket>,
        code: ErrorCode,
        detail: String,
        tenant: Arc<TenantState>,
        accepted: Instant,
    },
}

fn serve_connection(shared: &Arc<NetShared>, mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;

    // --- Handshake -------------------------------------------------------
    stream.set_read_timeout(Some(shared.config.handshake_timeout))?;
    let hello = match zsdb_protocol::read_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        Ok(None) => return Ok(()), // connected and left silently
        Err(ProtocolError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            // The handshake timer (SO_RCVTIMEO) expired: a slow client,
            // not a protocol violation — hang up without a BadRequest.
            return Ok(());
        }
        Err(_) => {
            write_frame_ignore_proto(
                &mut stream,
                &error_frame(0, ErrorCode::BadRequest, "malformed handshake frame"),
            );
            return Ok(());
        }
    };
    let tenant = match hello.message {
        // Anything in [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] is spoken
        // here; the ack echoes the client's version so an older client
        // proceeds on the wire format it understands.
        Message::Hello(h)
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&h.protocol_version) =>
        {
            write_frame_ignore_proto(
                &mut stream,
                &error_frame(
                    hello.request_id,
                    ErrorCode::BadRequest,
                    format!(
                        "unsupported protocol version {} (server speaks {PROTOCOL_VERSION})",
                        h.protocol_version
                    ),
                ),
            );
            return Ok(());
        }
        Message::Hello(h) if h.tenant.is_empty() => {
            write_frame_ignore_proto(
                &mut stream,
                &error_frame(
                    hello.request_id,
                    ErrorCode::Unauthenticated,
                    "empty tenant id",
                ),
            );
            return Ok(());
        }
        Message::Hello(h) => (h.tenant, h.protocol_version),
        other => {
            write_frame_ignore_proto(
                &mut stream,
                &error_frame(
                    hello.request_id,
                    ErrorCode::BadRequest,
                    format!("expected Hello, got {}", other.op_name()),
                ),
            );
            return Ok(());
        }
    };
    let (tenant, negotiated_version) = tenant;
    let tenant = match shared.tenant_state(&tenant) {
        Some(state) => state,
        None => {
            write_frame_ignore_proto(
                &mut stream,
                &error_frame(
                    hello.request_id,
                    ErrorCode::Unauthenticated,
                    format!("unknown tenant {tenant:?}"),
                ),
            );
            return Ok(());
        }
    };
    write_frame_ignore_proto(
        &mut stream,
        &Frame::new(
            hello.request_id,
            Message::HelloAck(HelloAck {
                protocol_version: negotiated_version,
                model_version: shared.server.model_version(),
                tenant_quota: tenant.quota,
            }),
        ),
    );
    stream.set_read_timeout(None)?;

    // Trace ids ride a v2 frame extension, so they are echoed only to
    // clients that negotiated v2; a v1 client gets byte-identical v1
    // frames (server-side traces still run, they just stay server-side).
    let wire_traces = negotiated_version >= 2;

    // --- Steady state: reader (this thread) + responder ------------------
    let (out_tx, out_rx) = mpsc::channel::<Outbound>();
    let responder = {
        let write_stream = stream.try_clone()?;
        let resp_shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("zsdb-net-respond".into())
            .spawn(move || responder_loop(&out_rx, write_stream, &resp_shared))?
    };
    read_requests(shared, &stream, &tenant, &out_tx, wire_traces);
    drop(out_tx); // responder drains what is left, then exits
    let _ = responder.join();
    Ok(())
}

/// Decode and admit request frames until the client disconnects, the
/// server shuts down, or the stream turns to garbage.
fn read_requests(
    shared: &Arc<NetShared>,
    stream: &TcpStream,
    tenant: &Arc<TenantState>,
    out: &mpsc::Sender<Outbound>,
    wire_traces: bool,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = [0u8; 16 * 1024];
    loop {
        // Next complete frame, blocking as needed.
        let frame = loop {
            match decode_frame(&buf) {
                Ok(Some((frame, used))) => {
                    buf.drain(..used);
                    break frame;
                }
                Ok(None) => match read_into(stream, &mut buf, &mut scratch) {
                    Ok(0) | Err(_) => return, // EOF or dead socket
                    Ok(_) => {}
                },
                Err(e) => {
                    // Unframeable bytes: tell the client why, then hang
                    // up.  Request ids are unrecoverable at this point, so
                    // the error goes out on the reserved id 0 (client ids
                    // start at 1) — a connection-level failure the client
                    // reader fans out to every pending request.
                    let _ = out.send(Outbound::Ready(error_frame(
                        0,
                        ErrorCode::BadRequest,
                        format!("unreadable frame: {e}"),
                    )));
                    return;
                }
            }
        };
        // A trace begins at frame decode, under the client-supplied id
        // when one rode the frame header (the tracer mints one otherwise).
        let tracer = shared.server.tracer();
        let begin_trace = |trace_id: u64| -> Option<ActiveTrace> {
            tracer
                .enabled()
                .then(|| tracer.begin_with_id(if wire_traces { trace_id } else { 0 }))
        };
        match frame.message {
            Message::Predict(plan) => {
                let trace = begin_trace(frame.trace_id);
                let mut group: Vec<(u64, PlanNode)> = vec![(frame.request_id, *plan)];
                coalesce_predicts(&mut buf, shared.config.max_coalesce, &mut group);
                if group.len() > 1 {
                    tracer.event(
                        "net.coalesced_batch",
                        group.len() as f64,
                        format!("tenant {:?}", tenant.name),
                    );
                }
                admit_group(shared, tenant, out, group, trace, wire_traces);
            }
            Message::PredictBatch(plans) => {
                let trace = begin_trace(frame.trace_id);
                admit_batch(
                    shared,
                    tenant,
                    out,
                    frame.request_id,
                    plans,
                    trace,
                    wire_traces,
                )
            }
            Message::Metrics => {
                let _ = out.send(Outbound::Ready(Frame::new(
                    frame.request_id,
                    Message::MetricsOk(Box::new(shared.gateway_metrics())),
                )));
            }
            Message::MetricsText => {
                let _ = out.send(Outbound::Ready(Frame::new(
                    frame.request_id,
                    Message::MetricsTextOk(shared.prometheus_text()),
                )));
            }
            Message::Health => {
                let _ = out.send(Outbound::Ready(Frame::new(
                    frame.request_id,
                    Message::HealthOk(HealthResponse {
                        healthy: true,
                        model_version: shared.server.model_version(),
                    }),
                )));
            }
            Message::Explain(req) => {
                let response = match shared.server.explain(req.trace_id) {
                    Some(record) => {
                        Frame::new(frame.request_id, Message::ExplainOk(Box::new(record)))
                    }
                    None => error_frame(
                        frame.request_id,
                        ErrorCode::BadRequest,
                        format!(
                            "no provenance retained for trace id {} (never traced, or aged out)",
                            req.trace_id
                        ),
                    ),
                };
                let _ = out.send(Outbound::Ready(response));
            }
            Message::SlowLog(req) => {
                // The slow ring is bounded server-side; cap the ask so a
                // hostile limit cannot make the response frame huge.
                let limit = req.limit.min(256) as usize;
                let _ = out.send(Outbound::Ready(Frame::new(
                    frame.request_id,
                    Message::SlowLogOk(shared.server.slow_log(limit)),
                )));
            }
            Message::SloStatus => {
                let _ = out.send(Outbound::Ready(Frame::new(
                    frame.request_id,
                    Message::SloStatusOk(shared.server.slo_status()),
                )));
            }
            other => {
                let _ = out.send(Outbound::Ready(error_frame(
                    frame.request_id,
                    ErrorCode::BadRequest,
                    format!("unexpected {} after handshake", other.op_name()),
                )));
            }
        }
    }
}

/// Pull further `Predict` frames already decoded-buffer-side into
/// `group` — the pipelining client's burst becomes one batched
/// submission.  A non-`Predict` frame stays in the buffer for the main
/// loop.
///
/// This deliberately never touches the socket: the responder thread
/// writes through a `try_clone` of it, and an opportunistic
/// `set_nonblocking(true)` read here would be shared with that clone
/// (non-blocking mode is a property of the underlying file description),
/// so a concurrent response write could spuriously fail with
/// `WouldBlock` and look like a dead client.  The main loop's blocking
/// read pulls up to 16 KiB per syscall, so a burst lands in `buf`
/// wholesale anyway.
fn coalesce_predicts(buf: &mut Vec<u8>, max_coalesce: usize, group: &mut Vec<(u64, PlanNode)>) {
    while group.len() < max_coalesce {
        match decode_frame(buf) {
            Ok(Some((frame, used))) => match frame.message {
                Message::Predict(plan) => {
                    buf.drain(..used);
                    group.push((frame.request_id, *plan));
                }
                _ => return, // leave it for the main loop
            },
            Ok(None) => return, // nothing more buffered right now
            Err(_) => return,   // main loop reports the framing error
        }
    }
}

/// Admit a group of pipelined single predictions: per-request quota
/// charge, then one atomic queue submission for the whole group.
fn admit_group(
    shared: &Arc<NetShared>,
    tenant: &Arc<TenantState>,
    out: &mpsc::Sender<Outbound>,
    group: Vec<(u64, PlanNode)>,
    mut trace: Option<ActiveTrace>,
    wire_traces: bool,
) {
    let accepted = Instant::now();
    let mut ids = Vec::with_capacity(group.len());
    let mut plans = Vec::with_capacity(group.len());
    for (id, plan) in group {
        if tenant.try_reserve(1) {
            ids.push(id);
            plans.push(plan);
        } else {
            tenant.rejected_quota.fetch_add(1, Ordering::Relaxed);
            let _ = out.send(Outbound::Ready(error_frame(
                id,
                ErrorCode::QuotaExceeded,
                format!(
                    "tenant {:?} exceeded its in-flight quota of {}",
                    tenant.name, tenant.quota
                ),
            )));
        }
    }
    if ids.is_empty() {
        return;
    }
    // The admission stage closes here: quota charged, about to enqueue.
    if let Some(t) = trace.as_mut() {
        t.mark(STAGE_ADMISSION);
    }
    let trace_id = match (&trace, wire_traces) {
        (Some(t), true) => t.id(),
        _ => 0,
    };
    if ids.len() == 1 {
        match shared
            .server
            .try_submit_traced(plans.pop().expect("one plan"), trace)
        {
            Ok(ticket) => {
                tenant.admitted.fetch_add(1, Ordering::Relaxed);
                let _ = out.send(Outbound::Single {
                    id: ids[0],
                    ticket,
                    tenant: Arc::clone(tenant),
                    accepted,
                    trace_id,
                });
            }
            Err(rejected) => {
                tenant.release(1);
                tenant.rejected_shed.fetch_add(1, Ordering::Relaxed);
                let _ = out.send(Outbound::Ready(error_frame(
                    ids[0],
                    error_code_of(&rejected.reason),
                    rejected.reason.to_string(),
                )));
            }
        }
        return;
    }
    let n = ids.len() as u64;
    match shared.server.try_submit_batch_traced(plans, trace) {
        Ok(ticket) => {
            tenant.admitted.fetch_add(n, Ordering::Relaxed);
            let _ = out.send(Outbound::Coalesced {
                ids,
                ticket,
                tenant: Arc::clone(tenant),
                accepted,
                trace_id,
            });
        }
        Err(rejected) => {
            // The group is clamped to one queue chunk, so a rejection is
            // normally all-or-nothing — but honour a partial admission if
            // it ever happens.
            let sent = ids.len() - rejected.plans.len();
            let code = error_code_of(&rejected.reason);
            let detail = rejected.reason.to_string();
            let err_ids = ids.split_off(sent);
            if let Some(ticket) = rejected.answered {
                tenant.admitted.fetch_add(sent as u64, Ordering::Relaxed);
                let _ = out.send(Outbound::Coalesced {
                    ids,
                    ticket,
                    tenant: Arc::clone(tenant),
                    accepted,
                    trace_id,
                });
            }
            tenant.release(err_ids.len() as u64);
            tenant
                .rejected_shed
                .fetch_add(err_ids.len() as u64, Ordering::Relaxed);
            for id in err_ids {
                let _ = out.send(Outbound::Ready(error_frame(id, code, detail.clone())));
            }
        }
    }
}

/// Admit one explicit client batch (`PredictBatch`): the whole batch
/// charges the quota at once and answers with one frame.
#[allow(clippy::too_many_arguments)]
fn admit_batch(
    shared: &Arc<NetShared>,
    tenant: &Arc<TenantState>,
    out: &mpsc::Sender<Outbound>,
    id: u64,
    plans: Vec<PlanNode>,
    mut trace: Option<ActiveTrace>,
    wire_traces: bool,
) {
    let accepted = Instant::now();
    let n = plans.len() as u64;
    if n == 0 {
        let _ = out.send(Outbound::Ready(Frame::new(
            id,
            Message::PredictBatchOk(Vec::new()),
        )));
        return;
    }
    if !tenant.try_reserve(n) {
        tenant.rejected_quota.fetch_add(n, Ordering::Relaxed);
        let _ = out.send(Outbound::Ready(error_frame(
            id,
            ErrorCode::QuotaExceeded,
            format!(
                "batch of {n} exceeds tenant {:?} in-flight quota of {}",
                tenant.name, tenant.quota
            ),
        )));
        return;
    }
    if let Some(t) = trace.as_mut() {
        t.mark(STAGE_ADMISSION);
    }
    let trace_id = match (&trace, wire_traces) {
        (Some(t), true) => t.id(),
        _ => 0,
    };
    match shared.server.try_submit_batch_traced(plans, trace) {
        Ok(ticket) => {
            tenant.admitted.fetch_add(n, Ordering::Relaxed);
            let _ = out.send(Outbound::Batch {
                id,
                n,
                ticket,
                tenant: Arc::clone(tenant),
                accepted,
                trace_id,
            });
        }
        Err(rejected) => {
            let sent = n - rejected.plans.len() as u64;
            tenant.admitted.fetch_add(sent, Ordering::Relaxed);
            tenant.rejected_shed.fetch_add(n - sent, Ordering::Relaxed);
            tenant.release(n - sent); // the admitted prefix releases on completion
            let _ = out.send(Outbound::BatchFailed {
                id,
                admitted: sent,
                answered: rejected.answered,
                code: error_code_of(&rejected.reason),
                detail: rejected.reason.to_string(),
                tenant: Arc::clone(tenant),
                accepted,
            });
        }
    }
}

/// Sole socket writer: turns admitted work into response frames in
/// admission order (the client demultiplexes by request id).  Keeps
/// draining for accounting even after the socket dies, so a client that
/// disconnects mid-flight never wedges tenant gauges.
fn responder_loop(rx: &mpsc::Receiver<Outbound>, stream: TcpStream, shared: &NetShared) {
    let tracer = shared.server.tracer();
    let metrics = shared.server.recorder();
    let stages = metrics.stage_recorder();
    let mut writer = io::BufWriter::new(stream);
    let mut socket_dead = false;
    // Close the respond stage (response encode + write) and finish the
    // trace: per-stage histograms globally (with the trace id as
    // exemplar), stage sums per tenant — and, when the work carried a
    // provenance seed, the assembled record enters the provenance log
    // and the finished trace the flight recorder.  All of this is the
    // cold (post-response) path.
    let finish_trace =
        |trace: Option<ActiveTrace>, tenant: &TenantState, seed: Option<ProvenanceSeed>| {
            if let Some(mut t) = trace {
                t.mark(STAGE_RESPOND);
                let done = tracer.finish(t);
                match seed {
                    Some(seed) => metrics.record_completed_trace(&seed, &done),
                    None => stages.record_trace(&done),
                }
                tenant.record_stages(&done);
            }
        };
    loop {
        // Batch flushes: only flush when there is momentarily nothing to
        // write, so a pipelined burst goes out in few syscalls.
        let item = match rx.try_recv() {
            Ok(item) => item,
            Err(mpsc::TryRecvError::Empty) => {
                if !socket_dead && writer.flush().is_err() {
                    socket_dead = true;
                }
                match rx.recv() {
                    Ok(item) => item,
                    Err(_) => break,
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => break,
        };
        let mut emit = |frame: &Frame, dead: &mut bool| {
            if *dead {
                return;
            }
            match encode_frame(frame) {
                Ok(bytes) => {
                    if writer.write_all(&bytes).is_err() {
                        *dead = true;
                    }
                }
                Err(_) => *dead = true,
            }
        };
        match item {
            Outbound::Ready(frame) => emit(&frame, &mut socket_dead),
            Outbound::Single {
                id,
                ticket,
                tenant,
                accepted,
                trace_id,
            } => {
                match ticket.wait_traced() {
                    Ok((prediction, trace)) => {
                        tenant.completed.fetch_add(1, Ordering::Relaxed);
                        tenant.record_latency(accepted.elapsed(), 1);
                        emit(
                            &Frame::traced(
                                id,
                                trace_id,
                                Message::PredictOk(wire_prediction(&prediction)),
                            ),
                            &mut socket_dead,
                        );
                        finish_trace(trace, &tenant, Some(prediction.provenance_seed()));
                    }
                    Err(e) => emit(
                        &error_frame(id, error_code_of(&e), e.to_string()),
                        &mut socket_dead,
                    ),
                }
                tenant.release(1);
            }
            Outbound::Coalesced {
                ids,
                ticket,
                tenant,
                accepted,
                trace_id,
            } => {
                let n = ids.len();
                match ticket.wait_traced() {
                    Ok((predictions, trace)) => {
                        tenant.completed.fetch_add(n as u64, Ordering::Relaxed);
                        tenant.record_latency(accepted.elapsed(), n);
                        for (id, prediction) in ids.iter().zip(&predictions) {
                            emit(
                                &Frame::traced(
                                    *id,
                                    trace_id,
                                    Message::PredictOk(wire_prediction(prediction)),
                                ),
                                &mut socket_dead,
                            );
                        }
                        // The group shares one trace/span; its provenance
                        // is seeded from the first member (same shard,
                        // class and model version for the whole chunk).
                        finish_trace(
                            trace,
                            &tenant,
                            predictions.first().map(|p| p.provenance_seed()),
                        );
                    }
                    Err(e) => {
                        for id in &ids {
                            emit(
                                &error_frame(*id, error_code_of(&e), e.to_string()),
                                &mut socket_dead,
                            );
                        }
                    }
                }
                tenant.release(n as u64);
            }
            Outbound::Batch {
                id,
                n,
                ticket,
                tenant,
                accepted,
                trace_id,
            } => {
                match ticket.wait_traced() {
                    Ok((predictions, trace)) => {
                        tenant.completed.fetch_add(n, Ordering::Relaxed);
                        tenant.record_latency(accepted.elapsed(), n as usize);
                        let wire = predictions.iter().map(wire_prediction).collect();
                        emit(
                            &Frame::traced(id, trace_id, Message::PredictBatchOk(wire)),
                            &mut socket_dead,
                        );
                        finish_trace(
                            trace,
                            &tenant,
                            predictions.first().map(|p| p.provenance_seed()),
                        );
                    }
                    Err(e) => emit(
                        &error_frame(id, error_code_of(&e), e.to_string()),
                        &mut socket_dead,
                    ),
                }
                tenant.release(n);
            }
            Outbound::BatchFailed {
                id,
                admitted,
                answered,
                code,
                detail,
                tenant,
                accepted,
            } => {
                // Await the admitted prefix so the in-flight gauge is
                // honest, even though the client sees one retryable error.
                if let Some(ticket) = answered {
                    if ticket.wait().is_ok() {
                        tenant.completed.fetch_add(admitted, Ordering::Relaxed);
                        tenant.record_latency(accepted.elapsed(), admitted as usize);
                    }
                    tenant.release(admitted);
                }
                emit(&error_frame(id, code, detail), &mut socket_dead);
            }
        }
    }
    if !socket_dead {
        let _ = writer.flush();
    }
}

/// Write one frame, swallowing protocol/IO errors (used on paths where
/// the connection is being torn down anyway).
fn write_frame_ignore_proto(stream: &mut TcpStream, frame: &Frame) {
    if let Ok(bytes) = encode_frame(frame) {
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
    }
}

/// Blocking read of some bytes from `stream` into `buf`; waits for at
/// least one byte, `Ok(0)` = EOF.  The stream's blocking mode is never
/// altered — the responder thread writes through a clone of this socket.
fn read_into(stream: &TcpStream, buf: &mut Vec<u8>, scratch: &mut [u8]) -> io::Result<usize> {
    let n = (&mut (&*stream)).read(scratch)?;
    buf.extend_from_slice(&scratch[..n]);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use zsdb_catalog::{presets, SchemaCatalog};
    use zsdb_client::{Client, ClientConfig, ClientError};
    use zsdb_core::features::{featurize_plan, FeaturizerConfig};
    use zsdb_core::model::ModelConfig;
    use zsdb_core::train::{TrainedModel, Trainer, TrainingConfig};
    use zsdb_engine::QueryRunner;
    use zsdb_protocol::HelloRequest;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn tiny_net_fixture() -> (TrainedModel, SchemaCatalog, Vec<PlanNode>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 1);
        let graphs: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| {
                zsdb_core::features::featurize_execution(db.catalog(), e, FeaturizerConfig::exact())
            })
            .collect();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let model = trainer.train(&graphs);
        let plans = runner.plan_workload(&queries);
        (model, db.catalog().clone(), plans)
    }

    fn start_gateway(
        server_config: ServerConfig,
        net_config: NetServerConfig,
    ) -> (NetServer, TrainedModel, SchemaCatalog, Vec<PlanNode>) {
        let (model, catalog, plans) = tiny_net_fixture();
        let pool = PredictionServer::start(model.clone(), catalog.clone(), server_config);
        let gateway =
            NetServer::start("127.0.0.1:0", pool, net_config).expect("bind localhost gateway");
        (gateway, model, catalog, plans)
    }

    fn wait_until(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if probe() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        probe()
    }

    #[test]
    fn remote_predictions_are_bit_identical_to_in_process() {
        let (gateway, model, catalog, plans) =
            start_gateway(ServerConfig::default(), NetServerConfig::default());
        let client =
            Client::connect(gateway.local_addr(), ClientConfig::tenant("t1")).expect("connect");
        assert_eq!(client.handshake_model_version().unwrap(), 1);
        for plan in &plans {
            let remote = client.predict(plan).expect("remote prediction");
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(remote.runtime_secs.to_bits(), reference.to_bits());
            assert_eq!(remote.model_version, 1);
        }
        // Explicit client batches are bit-identical too.
        let batch = client.predict_batch(&plans).expect("remote batch");
        assert_eq!(batch.len(), plans.len());
        for (plan, remote) in plans.iter().zip(&batch) {
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(remote.runtime_secs.to_bits(), reference.to_bits());
        }
        let health = client.health().expect("health");
        assert!(health.healthy);
        assert_eq!(health.model_version, 1);
    }

    #[test]
    fn pipelined_submissions_are_all_answered_and_accounted() {
        let (gateway, model, catalog, plans) =
            start_gateway(ServerConfig::default(), NetServerConfig::default());
        let client = Client::connect(gateway.local_addr(), ClientConfig::tenant("pipeliner"))
            .expect("connect");
        // Many requests in flight on ONE connection before any response is
        // consumed: this is what exercises pipelining + coalescing.
        let rounds = 4usize;
        let mut tickets = Vec::new();
        for _ in 0..rounds {
            for plan in &plans {
                tickets.push(client.submit(plan).expect("submit"));
            }
        }
        let total = tickets.len();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let remote = ticket.wait().expect("pipelined answer");
            let plan = &plans[i % plans.len()];
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(remote.runtime_secs.to_bits(), reference.to_bits());
        }
        assert!(
            wait_until(Duration::from_secs(5), || {
                gateway
                    .gateway_metrics()
                    .tenants
                    .iter()
                    .any(|t| t.tenant == "pipeliner" && t.in_flight == 0)
            }),
            "in-flight gauge drains once all responses are out"
        );
        let metrics = gateway.gateway_metrics();
        let tenant = metrics
            .tenants
            .iter()
            .find(|t| t.tenant == "pipeliner")
            .expect("tenant tracked");
        assert_eq!(tenant.admitted, total as u64);
        assert_eq!(tenant.completed, total as u64);
        assert_eq!(tenant.rejected_quota + tenant.rejected_shed, 0);
        assert!(tenant.latency_p50_ms > 0.0);
        assert_eq!(metrics.server_total_requests, total as u64);
    }

    #[test]
    fn quota_rejections_are_retryable_and_counted_per_tenant() {
        let (gateway, _model, _catalog, plans) = start_gateway(
            ServerConfig::default(),
            NetServerConfig::default().with_tenant("starved", TenantPolicy { max_in_flight: 0 }),
        );
        let client = Client::connect(gateway.local_addr(), ClientConfig::tenant("starved"))
            .expect("quota-0 tenants may still connect");
        assert_eq!(client.handshake_tenant_quota().unwrap(), 0);
        match client.predict(&plans[0]) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::QuotaExceeded);
                assert!(code.is_retryable());
            }
            other => panic!("expected a quota rejection, got {other:?}"),
        }
        match client.predict_batch(&plans) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
            other => panic!("expected a batch quota rejection, got {other:?}"),
        }
        let metrics = client.metrics().expect("metrics over the wire");
        let tenant = metrics
            .tenants
            .iter()
            .find(|t| t.tenant == "starved")
            .expect("tenant visible over the wire");
        assert_eq!(tenant.admitted, 0);
        assert_eq!(tenant.rejected_quota, 1 + plans.len() as u64);
        assert_eq!(tenant.quota, 0);
    }

    #[test]
    fn unknown_tenants_are_rejected_at_the_handshake() {
        let (gateway, _model, _catalog, _plans) = start_gateway(
            ServerConfig::default(),
            NetServerConfig {
                default_policy: None,
                ..NetServerConfig::default()
            }
            .with_tenant("vip", TenantPolicy { max_in_flight: 8 }),
        );
        match Client::connect(gateway.local_addr(), ClientConfig::tenant("interloper")) {
            Err(ClientError::Handshake(detail)) => {
                assert!(detail.contains("Unauthenticated"), "got: {detail}")
            }
            other => panic!("expected a handshake rejection, got {:?}", other.is_ok()),
        }
        // The configured tenant still gets in.
        let vip =
            Client::connect(gateway.local_addr(), ClientConfig::tenant("vip")).expect("vip in");
        assert_eq!(vip.handshake_tenant_quota().unwrap(), 8);
    }

    #[test]
    fn client_disconnecting_mid_flight_does_not_wedge_the_gateway() {
        let (gateway, model, catalog, plans) = start_gateway(
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            NetServerConfig::default(),
        );
        // A rude client: handshake, fire a pile of pipelined requests and
        // a batch, then vanish without reading a single response.
        {
            let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect raw");
            zsdb_protocol::write_frame(
                &mut stream,
                &Frame::new(
                    0,
                    Message::Hello(HelloRequest {
                        protocol_version: PROTOCOL_VERSION,
                        tenant: "rude".into(),
                    }),
                ),
            )
            .expect("hello");
            stream.flush().unwrap();
            let ack = zsdb_protocol::read_frame(&mut stream)
                .expect("ack read")
                .expect("ack frame");
            assert!(matches!(ack.message, Message::HelloAck(_)));
            for (i, plan) in plans.iter().enumerate() {
                zsdb_protocol::write_frame(
                    &mut stream,
                    &Frame::new(i as u64 + 1, Message::Predict(Box::new(plan.clone()))),
                )
                .expect("predict");
            }
            zsdb_protocol::write_frame(
                &mut stream,
                &Frame::new(99, Message::PredictBatch(plans.clone())),
            )
            .expect("batch");
            stream.flush().unwrap();
            // Dropping the stream closes the socket with everything in
            // flight.
        }
        // The abandoned work must still drain: no wedged worker, no leaked
        // queue slot, in-flight gauge back to zero.
        assert!(
            wait_until(Duration::from_secs(10), || {
                gateway
                    .gateway_metrics()
                    .tenants
                    .iter()
                    .any(|t| t.tenant == "rude" && t.in_flight == 0 && t.admitted > 0)
            }),
            "rude tenant's in-flight work drains after disconnect"
        );
        // And the gateway still serves new clients, bit-identically.
        let client = Client::connect(gateway.local_addr(), ClientConfig::tenant("polite"))
            .expect("connect after rude disconnect");
        let remote = client.predict(&plans[0]).expect("still serving");
        let reference = model.predict(&featurize_plan(&catalog, &plans[0], model.featurizer));
        assert_eq!(remote.runtime_secs.to_bits(), reference.to_bits());
        assert!(
            wait_until(Duration::from_secs(5), || {
                gateway.gateway_metrics().connections_active == 1
            }),
            "only the live client's connection remains"
        );
        let final_metrics = gateway.shutdown();
        let rude = final_metrics
            .tenants
            .iter()
            .find(|t| t.tenant == "rude")
            .expect("rude tenant tracked");
        assert_eq!(rude.admitted, rude.completed + rude.rejected_shed);
    }

    #[test]
    fn hot_swap_is_visible_over_the_wire() {
        let (gateway, model, catalog, plans) =
            start_gateway(ServerConfig::default(), NetServerConfig::default());
        let client =
            Client::connect(gateway.local_addr(), ClientConfig::tenant("t")).expect("connect");
        assert_eq!(client.predict(&plans[0]).unwrap().model_version, 1);
        // Fine-tune into a distinguishable v2 and swap it in.
        let graphs: Vec<_> = plans
            .iter()
            .map(|p| {
                let mut g = featurize_plan(&catalog, p, model.featurizer);
                g.runtime_secs = Some(1.0);
                g
            })
            .collect();
        let tuned = zsdb_core::Trainer::finetune_from(
            &model,
            &graphs,
            zsdb_core::FinetuneConfig {
                epochs: 3,
                learning_rate: 1e-3,
                ..zsdb_core::FinetuneConfig::default()
            },
        );
        gateway.server().swap_model(tuned.clone(), 2);
        let after = client.predict(&plans[0]).unwrap();
        assert_eq!(after.model_version, 2);
        let reference = tuned.predict(&featurize_plan(&catalog, &plans[0], tuned.featurizer));
        assert_eq!(after.runtime_secs.to_bits(), reference.to_bits());
        assert_eq!(client.metrics().unwrap().model_version, 2);
    }
}
