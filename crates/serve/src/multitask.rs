//! Concurrent serving of multi-task models: one submitted plan, **all**
//! task heads answered.
//!
//! Same architecture as the single-task [`PredictionServer`]: a
//! `std::thread` worker pool over a bounded MPSC queue (blocking
//! backpressure on [`MultiTaskPredictionServer::submit`]), one shared
//! read-only model, the fingerprint-keyed LRU [`FeatureCache`] so repeated
//! plan shapes skip featurization, and the same [`ServeMetrics`].  A
//! request is featurized **once** and pushed through the shared encoder
//! **once**; the cost, root-cardinality and per-operator heads all read
//! that single pass — which is the point of the multi-task subsystem: the
//! marginal cost of an extra task at serving time is one tiny head MLP,
//! not another model.
//!
//! Served predictions are bit-identical to the single-threaded
//! `model.predict(featurize_plan(…))` path, for every head.
//!
//! Implementation note: this module deliberately mirrors the worker-pool
//! machinery of [`server`](crate::server) instead of making that server
//! generic — the single-task `Prediction`/ticket types are pinned public
//! API.  When changing queue handling, metrics recording or shutdown
//! ordering in either module, mirror the change in the other.
//!
//! [`PredictionServer`]: crate::PredictionServer

use crate::cache::{CacheStats, FeatureCache};
use crate::error::ServeError;
use crate::metrics::{
    MetricsSnapshot, ObservabilityConfig, ServeMetrics, STAGE_CACHE_LOOKUP, STAGE_FEATURIZE,
    STAGE_FORWARD, STAGE_QUEUE_WAIT,
};
use crate::provenance::ProvenanceSeed;
use crate::server::{RejectedRequest, ServerConfig};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zsdb_catalog::SchemaCatalog;
use zsdb_core::features::featurize_plan;
use zsdb_core::fingerprint::plan_fingerprint;
use zsdb_core::PlanGraph;
use zsdb_engine::PlanNode;
use zsdb_multitask::{MultiTaskPrediction, TrainedMultiTaskModel};
use zsdb_obs::{ActiveTrace, FlightClass, FlightRecorder, Trace, Tracer};
use zsdb_protocol::{ProvenanceRecord, WireSloStatus};

/// Traces retained by the in-process tracer ring (per thread).
const TRACE_RING: usize = 256;

/// One answered multi-task request: every head's output from one submit.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedMultiTaskPrediction {
    /// All task-head outputs (runtime, root cardinality, per-operator
    /// cardinalities).
    pub tasks: MultiTaskPrediction,
    /// Structural fingerprint of the request plan.
    pub fingerprint: u64,
    /// Whether featurization was skipped thanks to the feature cache.
    pub cache_hit: bool,
    /// Enqueue-to-response latency.
    pub latency: Duration,
    /// Version of the model that answered (changes across hot-swaps).
    pub model_version: u32,
    /// The flight recorder's verdict on this request's latency.
    pub flight_class: FlightClass,
}

impl ServedMultiTaskPrediction {
    /// The provenance seed of this prediction (see
    /// [`Prediction::provenance_seed`](crate::Prediction::provenance_seed)).
    /// The multi-task pool is unsharded, so the shard placement fields
    /// are zero and nothing is ever stolen; the recorded predicted value
    /// is the cost head's runtime.
    pub fn provenance_seed(&self) -> ProvenanceSeed {
        ProvenanceSeed {
            fingerprint: self.fingerprint,
            model_version: self.model_version,
            cache_hit: self.cache_hit,
            home_shard: 0,
            executed_shard: 0,
            stolen: false,
            predicted_secs: self.tasks.runtime_secs,
            class: self.flight_class,
        }
    }
}

/// A versioned, immutable served multi-task model — the unit of an atomic
/// hot-swap (the multi-task mirror of
/// [`ServedModel`](crate::server::ServedModel)).
#[derive(Debug)]
pub struct ServedMultiTaskModel {
    /// Registry version of this model.
    pub version: u32,
    /// The model itself.
    pub model: TrainedMultiTaskModel,
}

/// Claim ticket for an in-flight multi-task request; redeem with
/// [`MultiTaskPredictionTicket::wait`].
#[derive(Debug)]
pub struct MultiTaskPredictionTicket {
    rx: mpsc::Receiver<(ServedMultiTaskPrediction, Option<ActiveTrace>)>,
}

impl MultiTaskPredictionTicket {
    /// Block until the prediction is ready.  Fails with
    /// [`ServeError::Closed`] if the server shut down before answering.
    pub fn wait(self) -> Result<ServedMultiTaskPrediction, ServeError> {
        self.wait_traced().map(|(prediction, _)| prediction)
    }

    /// [`MultiTaskPredictionTicket::wait`], also yielding the in-flight
    /// trace (if the request was traced) so the caller can close the
    /// respond stage.
    pub fn wait_traced(
        self,
    ) -> Result<(ServedMultiTaskPrediction, Option<ActiveTrace>), ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// Claim ticket for an in-flight multi-task batch; redeem with
/// [`MultiTaskBatchTicket::wait`].
#[derive(Debug)]
pub struct MultiTaskBatchTicket {
    parts: Vec<mpsc::Receiver<(Vec<ServedMultiTaskPrediction>, Option<ActiveTrace>)>>,
}

impl MultiTaskBatchTicket {
    /// Block until all predictions of the batch are ready, in submission
    /// order.
    pub fn wait(self) -> Result<Vec<ServedMultiTaskPrediction>, ServeError> {
        self.wait_traced().map(|(predictions, _)| predictions)
    }

    /// [`MultiTaskBatchTicket::wait`], also yielding the in-flight trace
    /// (carried by the first traced chunk, if any).
    pub fn wait_traced(
        self,
    ) -> Result<(Vec<ServedMultiTaskPrediction>, Option<ActiveTrace>), ServeError> {
        let mut predictions = Vec::new();
        let mut trace = None;
        for part in self.parts {
            let (chunk, chunk_trace) = part.recv().map_err(|_| ServeError::Closed)?;
            predictions.extend(chunk);
            trace = trace.or(chunk_trace);
        }
        Ok((predictions, trace))
    }
}

enum Job {
    Single {
        plan: PlanNode,
        enqueued: Instant,
        trace: Option<ActiveTrace>,
        reply: mpsc::Sender<(ServedMultiTaskPrediction, Option<ActiveTrace>)>,
    },
    Batch {
        plans: Vec<PlanNode>,
        enqueued: Instant,
        trace: Option<ActiveTrace>,
        reply: mpsc::Sender<(Vec<ServedMultiTaskPrediction>, Option<ActiveTrace>)>,
    },
}

struct Shared {
    /// The currently served model, swappable at runtime (see
    /// [`MultiTaskPredictionServer::swap_model`]).
    model: RwLock<Arc<ServedMultiTaskModel>>,
    catalog: SchemaCatalog,
    cache: FeatureCache,
    metrics: ServeMetrics,
    tracer: Tracer,
}

impl Shared {
    fn current(&self) -> Arc<ServedMultiTaskModel> {
        Arc::clone(&self.model.read().expect("served model lock poisoned"))
    }
}

/// A running all-heads prediction service over one trained multi-task
/// model and one database catalog.
pub struct MultiTaskPredictionServer {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl MultiTaskPredictionServer {
    /// Spawn the worker pool and start accepting requests.  Reuses the
    /// single-task [`ServerConfig`] tunables.
    pub fn start(
        model: TrainedMultiTaskModel,
        catalog: SchemaCatalog,
        config: ServerConfig,
    ) -> Self {
        MultiTaskPredictionServer::start_versioned(model, 1, catalog, config)
    }

    /// [`MultiTaskPredictionServer::start`] with an explicit initial
    /// model version (use the registry version the model was loaded
    /// from).
    pub fn start_versioned(
        model: TrainedMultiTaskModel,
        version: u32,
        catalog: SchemaCatalog,
        config: ServerConfig,
    ) -> Self {
        MultiTaskPredictionServer::start_observed(
            model,
            version,
            catalog,
            config,
            ObservabilityConfig::default(),
        )
    }

    /// [`MultiTaskPredictionServer::start_versioned`] with explicit
    /// observability tuning (flight-recorder retention + SLO objective),
    /// mirroring
    /// [`PredictionServer::start_observed`](crate::PredictionServer::start_observed).
    pub fn start_observed(
        model: TrainedMultiTaskModel,
        version: u32,
        catalog: SchemaCatalog,
        config: ServerConfig,
        observability: ObservabilityConfig,
    ) -> Self {
        assert!(config.workers > 0, "a server needs at least one worker");
        assert!(
            config.queue_capacity > 0,
            "a zero-capacity queue would reject every request"
        );
        let shared = Arc::new(Shared {
            model: RwLock::new(Arc::new(ServedMultiTaskModel { version, model })),
            catalog,
            cache: FeatureCache::new(config.cache_capacity),
            metrics: ServeMetrics::with_observability(observability),
            tracer: Tracer::new(TRACE_RING),
        });
        let (sender, receiver) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("zsdb-serve-mt-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("failed to spawn serving worker")
            })
            .collect();
        MultiTaskPredictionServer {
            sender: Some(sender),
            workers,
            shared,
            config,
        }
    }

    /// Enqueue a prediction request, blocking while the queue is full
    /// (backpressure).  One submit answers **every** task head.
    pub fn submit(&self, plan: PlanNode) -> Result<MultiTaskPredictionTicket, ServeError> {
        self.submit_traced(plan, None)
    }

    /// [`MultiTaskPredictionServer::submit`] carrying an in-flight trace:
    /// workers mark the queue-wait/cache/featurize/forward stages on it,
    /// and the trace comes back through
    /// [`MultiTaskPredictionTicket::wait_traced`].
    pub fn submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<MultiTaskPredictionTicket, ServeError> {
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            enqueued: Instant::now(),
            trace,
            reply,
        };
        self.sender
            .as_ref()
            .ok_or(ServeError::Closed)?
            .send(job)
            .map_err(|_| ServeError::Closed)?;
        self.shared.metrics.queue_inc();
        Ok(MultiTaskPredictionTicket { rx })
    }

    /// Enqueue a batch of plans (split into
    /// [`ServerConfig::max_batch_size`] chunks, each one bounded-queue
    /// slot); a worker featurizes each chunk in one cache-assisted sweep
    /// and answers all heads with a single shared-encoder batched pass.
    pub fn submit_batch(&self, plans: Vec<PlanNode>) -> Result<MultiTaskBatchTicket, ServeError> {
        let max = self.config.max_batch_size.max(1);
        let mut parts = Vec::with_capacity(plans.len().div_ceil(max).max(1));
        let mut remaining = plans;
        while !remaining.is_empty() {
            let rest = if remaining.len() > max {
                remaining.split_off(max)
            } else {
                Vec::new()
            };
            let chunk = std::mem::replace(&mut remaining, rest);
            let (reply, rx) = mpsc::channel();
            let job = Job::Batch {
                plans: chunk,
                enqueued: Instant::now(),
                trace: None,
                reply,
            };
            self.sender
                .as_ref()
                .ok_or(ServeError::Closed)?
                .send(job)
                .map_err(|_| ServeError::Closed)?;
            self.shared.metrics.queue_inc();
            parts.push(rx);
        }
        Ok(MultiTaskBatchTicket { parts })
    }

    /// Enqueue a prediction request without blocking; fails with a
    /// [`RejectedRequest`] carrying [`ServeError::Overloaded`] when the
    /// queue is full, returning the plan to the caller for retry — the
    /// multi-task mirror of
    /// [`PredictionServer::try_submit`](crate::PredictionServer::try_submit).
    /// Every rejection is counted in
    /// [`MetricsSnapshot::rejected_requests`](crate::MetricsSnapshot).
    pub fn try_submit(&self, plan: PlanNode) -> Result<MultiTaskPredictionTicket, RejectedRequest> {
        self.try_submit_traced(plan, None)
    }

    /// [`MultiTaskPredictionServer::try_submit`] carrying an in-flight
    /// trace (see
    /// [`submit_traced`](MultiTaskPredictionServer::submit_traced)).  A
    /// rejected request's trace is dropped unfinished.
    pub fn try_submit_traced(
        &self,
        plan: PlanNode,
        trace: Option<ActiveTrace>,
    ) -> Result<MultiTaskPredictionTicket, RejectedRequest> {
        let sender = match self.sender.as_ref() {
            Some(s) => s,
            None => {
                self.shared.metrics.record_rejection();
                return Err(RejectedRequest::new(plan, ServeError::Closed));
            }
        };
        let (reply, rx) = mpsc::channel();
        let job = Job::Single {
            plan,
            enqueued: Instant::now(),
            trace,
            reply,
        };
        let take_plan = |job: Job| match job {
            Job::Single { plan, .. } => plan,
            Job::Batch { .. } => unreachable!("single submission cannot hold a batch"),
        };
        match sender.try_send(job) {
            Ok(()) => {
                self.shared.metrics.queue_inc();
                Ok(MultiTaskPredictionTicket { rx })
            }
            Err(TrySendError::Full(job)) => {
                self.shared.metrics.record_rejection();
                Err(RejectedRequest::new(take_plan(job), ServeError::Overloaded))
            }
            Err(TrySendError::Disconnected(job)) => {
                self.shared.metrics.record_rejection();
                Err(RejectedRequest::new(take_plan(job), ServeError::Closed))
            }
        }
    }

    /// Submit and wait for the all-heads answer.
    pub fn predict_blocking(
        &self,
        plan: PlanNode,
    ) -> Result<ServedMultiTaskPrediction, ServeError> {
        self.submit(plan)?.wait()
    }

    /// Atomically replace the served model with a new version (see
    /// [`PredictionServer::swap_model`](crate::PredictionServer::swap_model)
    /// — identical semantics: in-flight batches finish on the old
    /// weights, the feature cache is invalidated, no request is lost).
    pub fn swap_model(&self, model: TrainedMultiTaskModel, version: u32) {
        let next = Arc::new(ServedMultiTaskModel { version, model });
        *self
            .shared
            .model
            .write()
            .expect("served model lock poisoned") = next;
        self.shared.cache.invalidate();
        self.shared.metrics.record_swap();
        self.shared.tracer.event(
            "serve.model_swap",
            f64::from(version),
            format!("hot-swapped to multi-task model version {version}"),
        );
    }

    /// The currently served model (and its version), pinned.
    pub fn model(&self) -> Arc<ServedMultiTaskModel> {
        self.shared.current()
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> u32 {
        self.shared.current().version
    }

    /// The catalog requests are featurized against.
    pub fn catalog(&self) -> &SchemaCatalog {
        &self.shared.catalog
    }

    /// Current serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.cache.stats(), self.config.workers)
    }

    /// Feature-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The server's trace collector: begin traces to attach to
    /// [`submit_traced`](MultiTaskPredictionServer::submit_traced), look
    /// finished ones up by id, and record standalone events.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The slow-request flight recorder (see
    /// [`PredictionServer::flight_recorder`](crate::PredictionServer::flight_recorder)).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        self.shared.metrics.flight()
    }

    /// Finish a traced request end to end: closes the trace, records its
    /// per-stage breakdown, feeds the flight recorder and stores the
    /// prediction's [`ProvenanceRecord`] for [`explain`](Self::explain).
    pub fn complete_traced(
        &self,
        prediction: &ServedMultiTaskPrediction,
        trace: ActiveTrace,
    ) -> Trace {
        let done = self.shared.tracer.finish(trace);
        self.shared
            .metrics
            .record_completed_trace(&prediction.provenance_seed(), &done);
        done
    }

    /// Full provenance of one served prediction by trace id (see
    /// [`PredictionServer::explain`](crate::PredictionServer::explain)).
    pub fn explain(&self, trace_id: u64) -> Option<ProvenanceRecord> {
        self.shared.metrics.provenance().find(trace_id)
    }

    /// The retained slow/failed requests' provenance, worst first, up to
    /// `limit` records.
    pub fn slow_log(&self, limit: usize) -> Vec<ProvenanceRecord> {
        self.shared.metrics.provenance().slow_log(limit)
    }

    /// Current SLO position: objective, target and the rolling windows'
    /// burn rates.
    pub fn slo_status(&self) -> WireSloStatus {
        self.shared.metrics.slo_status()
    }

    /// The live metrics recorder behind [`metrics`](Self::metrics) —
    /// exposes the queue gauge, per-stage histogram recorder and the
    /// named-metric registry.
    pub fn recorder(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Prometheus text exposition of the serving metrics.
    pub fn prometheus_text(&self) -> String {
        self.shared
            .metrics
            .prometheus_text(self.shared.cache.stats(), self.config.workers)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Drain the queue, stop all workers and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MultiTaskPredictionServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn featurize_cached(
    shared: &Shared,
    served: &ServedMultiTaskModel,
    plan: &PlanNode,
) -> (Arc<PlanGraph>, u64, bool) {
    let fingerprint = plan_fingerprint(plan);
    let (graph, cache_hit) = shared
        .cache
        .get_or_insert_with(served.version, fingerprint, || {
            featurize_plan(&shared.catalog, plan, served.model.featurizer)
        });
    (graph, fingerprint, cache_hit)
}

fn worker_loop(shared: &Shared, receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never during
        // inference.
        let job = match receiver.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shutdown
        };
        shared.metrics.queue_dec();
        match job {
            Job::Single {
                plan,
                enqueued,
                mut trace,
                reply,
            } => {
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_QUEUE_WAIT);
                }
                // Pin the current model for the whole job: a concurrent
                // hot-swap never changes weights mid-request.
                let served = shared.current();
                let fingerprint = plan_fingerprint(&plan);
                let (graph, cache_hit) = {
                    // On a miss the closure runs: its entry checkpoint
                    // closes the cache-lookup stage, so featurization gets
                    // its own stage below.
                    let miss_trace = &mut trace;
                    shared
                        .cache
                        .get_or_insert_with(served.version, fingerprint, || {
                            if let Some(t) = miss_trace.as_mut() {
                                t.mark(STAGE_CACHE_LOOKUP);
                            }
                            featurize_plan(&shared.catalog, &plan, served.model.featurizer)
                        })
                };
                if let Some(t) = trace.as_mut() {
                    if cache_hit {
                        t.mark(STAGE_CACHE_LOOKUP);
                    } else {
                        t.mark(STAGE_FEATURIZE);
                    }
                }
                let tasks = served.model.predict(&graph);
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_FORWARD);
                }
                let latency = enqueued.elapsed();
                let flight_class = shared.metrics.record(latency);
                let _ = reply.send((
                    ServedMultiTaskPrediction {
                        tasks,
                        fingerprint,
                        cache_hit,
                        latency,
                        model_version: served.version,
                        flight_class,
                    },
                    trace,
                ));
            }
            Job::Batch {
                plans,
                enqueued,
                mut trace,
                reply,
            } => {
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_QUEUE_WAIT);
                }
                let served = shared.current();
                let mut fingerprints = Vec::with_capacity(plans.len());
                let mut cache_hits = Vec::with_capacity(plans.len());
                let mut graphs = Vec::with_capacity(plans.len());
                for plan in &plans {
                    let (graph, fingerprint, cache_hit) = featurize_cached(shared, &served, plan);
                    fingerprints.push(fingerprint);
                    cache_hits.push(cache_hit);
                    graphs.push(graph);
                }
                if let Some(t) = trace.as_mut() {
                    // Lookups and featurization interleave across the
                    // sweep, so the whole sweep is one featurize stage.
                    t.mark(STAGE_FEATURIZE);
                }
                let refs: Vec<&PlanGraph> = graphs.iter().map(|g| g.as_ref()).collect();
                let all_tasks = served.model.predict_batch(&refs);
                if let Some(t) = trace.as_mut() {
                    t.mark(STAGE_FORWARD);
                }
                let latency = enqueued.elapsed();
                let flight_class = shared.metrics.record_batch(plans.len(), latency);
                let predictions = all_tasks
                    .into_iter()
                    .zip(fingerprints)
                    .zip(cache_hits)
                    .map(
                        |((tasks, fingerprint), cache_hit)| ServedMultiTaskPrediction {
                            tasks,
                            fingerprint,
                            cache_hit,
                            latency,
                            model_version: served.version,
                            flight_class,
                        },
                    )
                    .collect();
                let _ = reply.send((predictions, trace));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_core::TrainingConfig;
    use zsdb_engine::QueryRunner;
    use zsdb_multitask::{sample_from_execution, MultiTaskConfig, MultiTaskTrainer};
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn fixture() -> (
        TrainedMultiTaskModel,
        SchemaCatalog,
        Vec<PlanNode>,
        Vec<zsdb_multitask::MultiTaskSample>,
    ) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 15, 1);
        let samples: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| sample_from_execution(db.catalog(), e, FeaturizerConfig::estimated()))
            .collect();
        let trainer = MultiTaskTrainer::new(
            MultiTaskConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                early_stopping_patience: 0,
                batch_size: 8,
                microbatch_size: 4,
                ..TrainingConfig::default()
            },
            FeaturizerConfig::estimated(),
        );
        let model = trainer.train(&samples);
        let plans = runner.plan_workload(&queries);
        (model, db.catalog().clone(), plans, samples)
    }

    #[test]
    fn one_submit_answers_every_head_bit_identically() {
        let (model, catalog, plans, _) = fixture();
        let server = MultiTaskPredictionServer::start(
            model.clone(),
            catalog.clone(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        for plan in &plans {
            let served = server.predict_blocking(plan.clone()).unwrap();
            let reference = model.predict(&featurize_plan(&catalog, plan, model.featurizer));
            assert_eq!(
                served.tasks.runtime_secs.to_bits(),
                reference.runtime_secs.to_bits()
            );
            assert_eq!(
                served.tasks.root_rows.to_bits(),
                reference.root_rows.to_bits()
            );
            assert_eq!(served.tasks.operator_rows, reference.operator_rows);
            assert_eq!(served.fingerprint, plan_fingerprint(plan));
        }
    }

    #[test]
    fn hot_swap_serves_the_new_heads_and_invalidates_the_cache() {
        let (model, catalog, plans, samples) = fixture();
        let tuned = MultiTaskTrainer::finetune_from(
            &model,
            &samples[..8],
            zsdb_core::FinetuneConfig {
                epochs: 3,
                learning_rate: 1e-3,
                ..zsdb_core::FinetuneConfig::default()
            },
        );
        let server = MultiTaskPredictionServer::start(
            model.clone(),
            catalog.clone(),
            ServerConfig::default(),
        );
        assert_eq!(server.model_version(), 1);
        let before = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(before.model_version, 1);

        server.swap_model(tuned.clone(), 2);
        assert_eq!(server.model_version(), 2);
        let after = server.predict_blocking(plans[0].clone()).unwrap();
        assert_eq!(after.model_version, 2);
        assert!(!after.cache_hit, "swap invalidated the feature cache");
        let reference = tuned.predict(&featurize_plan(&catalog, &plans[0], tuned.featurizer));
        assert_eq!(
            after.tasks.runtime_secs.to_bits(),
            reference.runtime_secs.to_bits()
        );
        assert_eq!(
            after.tasks.root_rows.to_bits(),
            reference.root_rows.to_bits()
        );
        assert_eq!(after.tasks.operator_rows, reference.operator_rows);
        let metrics = server.metrics();
        assert_eq!(metrics.model_swaps, 1);
        assert_eq!(metrics.cache_invalidations, 1);
    }

    #[test]
    fn batch_submission_matches_singles_and_hits_the_cache() {
        let (model, catalog, plans, _) = fixture();
        let server = MultiTaskPredictionServer::start(model, catalog, ServerConfig::default());
        let singles: Vec<ServedMultiTaskPrediction> = plans
            .iter()
            .map(|p| server.predict_blocking(p.clone()).unwrap())
            .collect();
        let batch = server.submit_batch(plans.clone()).unwrap().wait().unwrap();
        assert_eq!(batch.len(), plans.len());
        for (single, batched) in singles.iter().zip(&batch) {
            assert_eq!(
                single.tasks.runtime_secs.to_bits(),
                batched.tasks.runtime_secs.to_bits()
            );
            assert_eq!(
                single.tasks.root_rows.to_bits(),
                batched.tasks.root_rows.to_bits()
            );
            assert_eq!(single.tasks.operator_rows, batched.tasks.operator_rows);
            assert!(batched.cache_hit, "singles warmed the cache");
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.total_requests, 2 * plans.len() as u64);
    }

    #[test]
    fn traced_submit_marks_the_pipeline_stages() {
        let (model, catalog, plans, _) = fixture();
        let server = MultiTaskPredictionServer::start(model, catalog, ServerConfig::default());
        // Warm the cache so the traced request takes the hit path.
        server.predict_blocking(plans[0].clone()).unwrap();
        let active = server.tracer().begin().expect("tracer starts enabled");
        let id = active.id();
        let ticket = server
            .submit_traced(plans[0].clone(), Some(active))
            .unwrap();
        let (prediction, trace) = ticket.wait_traced().unwrap();
        assert!(prediction.cache_hit);
        let done = server.complete_traced(&prediction, trace.expect("trace rides the job"));
        assert_eq!(done.id, id);
        let stages: Vec<&str> = done.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            stages,
            vec![STAGE_QUEUE_WAIT, STAGE_CACHE_LOOKUP, STAGE_FORWARD]
        );
        assert_eq!(
            done.total_ns,
            done.stages.iter().map(|s| s.duration_ns).sum::<u64>(),
            "stages tile the trace"
        );
        // The finished trace is queryable by id, and so is its
        // provenance record.
        assert_eq!(server.tracer().find(id).expect("retained").id, id);
        let record = server.explain(id).expect("provenance retained");
        assert_eq!(record.model_version, prediction.model_version);
        assert_eq!(record.fingerprint, prediction.fingerprint);
        assert!(record.cache_hit);
        assert_eq!(
            record.predicted_secs.to_bits(),
            prediction.tasks.runtime_secs.to_bits()
        );
        assert_eq!((record.home_shard, record.executed_shard), (0, 0));
    }

    #[test]
    fn queue_depth_gauge_returns_to_zero_after_drain() {
        let (model, catalog, plans, _) = fixture();
        let server = MultiTaskPredictionServer::start(model, catalog, ServerConfig::default());
        let tickets: Vec<_> = (0..16)
            .map(|_| server.submit(plans[0].clone()).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let batch = server.submit_batch(plans.clone()).unwrap();
        batch.wait().unwrap();
        assert_eq!(server.metrics().queue_depth, 0, "all dequeued");
    }

    #[test]
    fn try_submit_sheds_load_and_counts_rejections() {
        let (model, catalog, plans, _) = fixture();
        let server = MultiTaskPredictionServer::start(
            model,
            catalog,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        );
        let mut overloaded = 0u64;
        let mut tickets = Vec::new();
        for _ in 0..200 {
            match server.try_submit(plans[1].clone()) {
                Ok(t) => tickets.push(t),
                Err(RejectedRequest {
                    plan,
                    reason: ServeError::Overloaded,
                }) => {
                    overloaded += 1;
                    assert_eq!(&*plan, &plans[1], "plan returned for retry");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(overloaded > 0, "a 200-request burst should overflow");
        assert_eq!(server.metrics().rejected_requests, overloaded);

        // A closed server rejects (and counts) too.
        let mut server = server;
        server.stop_workers();
        let rejected = server.try_submit(plans[0].clone()).unwrap_err();
        assert!(matches!(rejected.reason, ServeError::Closed));
        assert_eq!(server.metrics().rejected_requests, overloaded + 1);
    }
}
