//! # zsdb-serve — model serving for the zero-shot cost model
//!
//! The paper's promise is a model that works on unseen databases *out of
//! the box*; this crate supplies the "box": everything needed to take a
//! trained [`TrainedModel`](zsdb_core::train::TrainedModel) from a training
//! run to a deployable prediction service.
//!
//! * [`registry`] — a persistent, versioned model registry.  Artifacts are
//!   plain serde_json files carrying the full model plus provenance
//!   (architecture, featurizer mode) and *integrity probes*: recorded
//!   prediction bit-patterns that every load re-verifies, so a corrupted
//!   or drifted artifact is rejected before it serves a single request.
//! * [`server`] — a concurrent inference engine sharded thread-per-core:
//!   each worker owns a **bounded** run queue (backpressure instead of
//!   unbounded growth), a feature-cache slice and preallocated inference
//!   scratch; requests are routed to shards by plan fingerprint, idle
//!   workers steal from loaded ones, and every request is answered
//!   bit-identically to the single-threaded path regardless of shard
//!   count or stealing.
//! * [`multitask`] — the same worker-pool serving for multi-task models
//!   (`zsdb_multitask`): one submitted plan answers **every** task head
//!   (cost, root cardinality, per-operator cardinalities) from a single
//!   shared-encoder pass; the registry stores multi-task artifacts with
//!   per-head integrity probes.
//! * [`cache`] — an LRU feature cache keyed by the structural plan
//!   fingerprint ([`zsdb_core::fingerprint`]), so repeated query shapes
//!   skip featurization entirely.
//! * [`metrics`] — throughput and p50/p95/p99 latency, exportable as the
//!   machine-readable `BENCH_serve.json` report.  Recording is wait-free
//!   across worker threads (per-thread striped shards from [`zsdb_obs`],
//!   merged only at snapshot time), every request decomposes into named
//!   pipeline stages (`admission → queue_wait → cache_lookup/featurize →
//!   forward → respond`), and the whole registry renders as
//!   Prometheus-style text exposition alongside the JSON snapshot.  On
//!   top ride the diagnosis surfaces: a flight recorder retaining slow
//!   and failed traces, SLO burn-rate tracking against a latency
//!   objective, and histogram exemplars linking buckets to trace ids.
//! * [`provenance`] — a [`ProvenanceRecord`](zsdb_protocol::ProvenanceRecord)
//!   per traced prediction: plan fingerprint, serving model name +
//!   version, cache hit/miss, home vs executing shard (work stealing is
//!   visible), per-stage breakdown and the predicted value — queryable
//!   in-process (`explain`/`slow_log`/`slo_status` on both servers) and
//!   over the wire via the v2 `Explain`/`SlowLog`/`SloStatus` ops.
//!   Assembly is cold-path only; the warm cache-hit request stays
//!   zero-allocation.
//! * [`net`] — a TCP front-end over the worker pool: the framed
//!   [`zsdb_protocol`] wire protocol, a tenant handshake, per-tenant
//!   admission quotas on top of the bounded queue's load shedding,
//!   pipelined request coalescing into batched submissions, and
//!   per-tenant request/rejection/latency metrics.
//! * [`adapt`] — the online adaptation loop: observed executions (the
//!   engine's [`ObservationLog`](zsdb_engine::ObservationLog)) feed a
//!   rolling-median [`DriftDetector`]; on drift a background thread
//!   fine-tunes from the live weights, registers + promotes the result
//!   as a new registry version and **hot-swaps** it into the running
//!   server with zero downtime.  `promote`/`rollback` are first-class
//!   registry operations.
//!
//! ```no_run
//! use zsdb_serve::{ModelRegistry, PredictionServer, ServerConfig};
//! # fn demo(model: zsdb_core::train::TrainedModel,
//! #         catalog: zsdb_catalog::SchemaCatalog,
//! #         probe: Vec<zsdb_core::PlanGraph>,
//! #         plan: zsdb_engine::PlanNode) -> Result<(), zsdb_serve::ServeError> {
//! let registry = ModelRegistry::open("models")?;
//! let version = registry.register("cost", &model, &probe)?;
//! let served = registry.load("cost", version)?; // integrity-checked
//! let server = PredictionServer::start(served, catalog, ServerConfig::default());
//! let prediction = server.predict_blocking(plan)?;
//! println!("predicted {:.3}s ({})", prediction.runtime_secs, server.metrics());
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod cache;
pub mod error;
pub mod metrics;
pub mod multitask;
pub mod net;
pub mod provenance;
pub mod registry;
pub mod server;

pub use adapt::{
    rollback_and_swap, AdaptationConfig, AdaptationLoop, AdaptationStatus, DriftDetector,
};
pub use cache::{CacheStats, FeatureCache};
pub use error::ServeError;
pub use metrics::{
    MetricsSnapshot, ObservabilityConfig, ServeMetrics, StageRecorder, BATCH_SIZE_BUCKET_LABELS,
    STAGE_ADMISSION, STAGE_CACHE_LOOKUP, STAGE_FEATURIZE, STAGE_FORWARD, STAGE_QUEUE_WAIT,
    STAGE_RESPOND,
};
pub use multitask::{
    MultiTaskBatchTicket, MultiTaskPredictionServer, MultiTaskPredictionTicket,
    ServedMultiTaskModel, ServedMultiTaskPrediction,
};
pub use net::{NetServer, NetServerConfig, TenantPolicy};
pub use provenance::{ProvenanceLog, ProvenanceSeed, MODEL_NAME};
pub use registry::{
    ArtifactManifest, IntegrityProbe, ModelRegistry, MultiTaskArtifactManifest,
    MultiTaskIntegrityProbe, ARTIFACT_FORMAT_VERSION,
};
pub use server::{
    BatchPredictionTicket, Prediction, PredictionServer, PredictionTicket, RejectedBatch,
    RejectedRequest, ServedModel, ServerConfig,
};
