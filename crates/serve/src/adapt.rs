//! Online adaptation: the execute → observe → fine-tune → hot-swap loop.
//!
//! The paper's promise is a model that works on unseen databases
//! *out of the box* and then gets cheaply better once it sees a handful
//! of real executions.  This module closes that loop **without stopping
//! inference**:
//!
//! ```text
//!            requests                    observed executions
//!               │                                │
//!               ▼                                ▼
//!      ┌─────────────────┐             ┌──────────────────┐
//!      │ PredictionServer│◀─Arc swap──┐│  ObservationLog  │ (zsdb_engine,
//!      │  (worker pool)  │            ││ bounded reservoir│  deterministic
//!      └────────┬────────┘            │└────────┬─────────┘  eviction)
//!               │ live predictions    │         │ drain
//!               ▼                     │         ▼
//!      ┌─────────────────┐           ┌┴─────────────────────┐
//!      │  DriftDetector  │──drifted─▶│ Trainer::finetune_from│
//!      │ rolling median  │           │  (batched shard engine)│
//!      │    q-error      │           └┬─────────────────────┘
//!      └─────────────────┘            │ register + promote
//!                                     ▼
//!                              ┌──────────────┐
//!                              │ ModelRegistry │  v1 → v2 → v3 …
//!                              │ promote /     │  (integrity probes
//!                              │ rollback      │   on every version)
//!                              └──────────────┘
//! ```
//!
//! The [`AdaptationLoop`] is a background thread that periodically drains
//! the engine's [`ObservationLog`], featurizes the observations with the
//! *live* model's featurizer, and feeds the [`DriftDetector`] with the
//! q-errors of the live model's predictions against the observed
//! runtimes.  When the rolling median q-error crosses the configured
//! threshold and enough observations have accumulated, the loop
//! fine-tunes from the live weights ([`Trainer::finetune_from`] — the
//! same deterministic shard engine as offline training), registers the
//! result as a **new registry version** (with fresh integrity probes,
//! same artifact format), promotes it, and atomically hot-swaps it into
//! the server ([`PredictionServer::swap_model`]).  In-flight batches
//! finish on the old weights; the feature cache is invalidated; no
//! request is ever dropped.
//!
//! [`rollback_and_swap`] is the inverse: pop the promotion history and
//! swap the prior version (freshly loaded and integrity-checked) back
//! in — predictions then return bit-identical to that version's original
//! tenure.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use crate::server::PredictionServer;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zsdb_core::features::featurize_execution;
use zsdb_core::{FinetuneConfig, PlanGraph, Trainer};
use zsdb_engine::ObservationLog;
use zsdb_nn::q_error;

/// Rolling-window drift detector over prediction q-errors.
///
/// Each observed execution contributes one sample: the q-error of the
/// live model's prediction against the observed runtime.  The detector
/// reports drift when the **median** of the most recent
/// [`window`](DriftDetector::new) samples crosses the threshold — the
/// median (not the mean) so a single pathological query cannot trigger a
/// fine-tune, and a genuine distribution shift cannot hide behind a few
/// lucky hits.
///
/// Monotonicity (property-tested): inflating every observed runtime by a
/// sufficiently large constant factor drives every q-error, hence the
/// median, above any threshold — a systematic runtime shift *must*
/// trigger.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: VecDeque<f64>,
    window_size: usize,
    min_samples: usize,
    threshold: f64,
}

impl DriftDetector {
    /// Create a detector that reports drift once the rolling median
    /// q-error over the last `window_size` samples (with at least
    /// `min_samples` recorded) reaches `threshold`.
    pub fn new(threshold: f64, window_size: usize, min_samples: usize) -> Self {
        assert!(threshold >= 1.0, "q-errors are ≥ 1, so thresholds must be");
        assert!(window_size > 0, "a zero-size window can never detect");
        DriftDetector {
            window: VecDeque::with_capacity(window_size),
            window_size,
            // A minimum above the window size could never be met (the
            // window caps at window_size samples), silently disabling
            // detection forever — clamp instead.
            min_samples: min_samples.clamp(1, window_size),
            threshold,
        }
    }

    /// Record one (live prediction, observed runtime) pair.
    pub fn record(&mut self, predicted: f64, observed: f64) {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(q_error(predicted, observed));
    }

    /// Median q-error of the current window (`NaN` when empty).
    pub fn rolling_median(&self) -> f64 {
        let samples: Vec<f64> = self.window.iter().copied().collect();
        zsdb_nn::median(&samples)
    }

    /// Whether the rolling median has crossed the threshold (with the
    /// minimum sample count met).
    pub fn drifted(&self) -> bool {
        self.window.len() >= self.min_samples && self.rolling_median() >= self.threshold
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Forget all samples (called after a successful adaptation: the new
    /// model must earn its own drift evidence).
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

/// Tunables of the background [`AdaptationLoop`].
#[derive(Debug, Clone)]
pub struct AdaptationConfig {
    /// Rolling-median q-error at which the live model counts as drifted.
    pub drift_threshold: f64,
    /// Size of the drift detector's rolling window.
    pub drift_window: usize,
    /// Minimum q-error samples before drift may be declared **and**
    /// minimum accumulated observations before a fine-tune may run.
    pub min_observations: usize,
    /// How often the loop drains the observation log.
    pub poll_interval: Duration,
    /// Fine-tuning hyper-parameters of each adaptation round.
    pub finetune: FinetuneConfig,
    /// Integrity probes stored with each adapted version (drawn from the
    /// round's own observations).
    pub max_probe_graphs: usize,
    /// Stop adapting after this many successful swaps (0 = unbounded) —
    /// once reached the loop idles and stops consuming the observation
    /// log (which stays bounded by its own reservoir); tests and
    /// benchmarks use this as a deterministic cut-off.
    pub max_swaps: u64,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            drift_threshold: 1.5,
            drift_window: 256,
            min_observations: 16,
            poll_interval: Duration::from_millis(250),
            finetune: FinetuneConfig::default(),
            max_probe_graphs: 4,
            max_swaps: 0,
        }
    }
}

/// Point-in-time progress report of an [`AdaptationLoop`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptationStatus {
    /// Poll rounds that drained at least one observation.
    pub rounds: u64,
    /// Observations consumed (drained and featurized) so far.
    pub observations_consumed: u64,
    /// Fine-tune → register → promote → swap cycles completed.
    pub swaps: u64,
    /// Registry version currently being served (as of the last swap; 0
    /// before the first).
    pub last_version: u32,
    /// Rolling median q-error at the last drift check (`NaN` before any).
    pub last_median_qerror: f64,
    /// Last registry/serving error the loop survived, if any.
    pub last_error: Option<String>,
}

struct LoopShared {
    status: Mutex<AdaptationStatus>,
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The background adaptation thread: drains observations, detects drift,
/// fine-tunes, registers + promotes, hot-swaps.  See the module docs for
/// the full loop diagram.
pub struct AdaptationLoop {
    handle: Option<JoinHandle<()>>,
    shared: Arc<LoopShared>,
}

impl AdaptationLoop {
    /// Spawn the loop against a running server.
    ///
    /// `model_name` is the registry name adapted versions are registered
    /// and promoted under; the server's current version should already be
    /// the registry's active version of that name (e.g. started via
    /// [`PredictionServer::start_versioned`] from
    /// [`ModelRegistry::active_version`]).
    pub fn start(
        server: Arc<PredictionServer>,
        registry: ModelRegistry,
        model_name: impl Into<String>,
        log: Arc<ObservationLog>,
        config: AdaptationConfig,
    ) -> Self {
        let shared = Arc::new(LoopShared {
            status: Mutex::new(AdaptationStatus {
                last_median_qerror: f64::NAN,
                last_version: server.model_version(),
                ..AdaptationStatus::default()
            }),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let model_name = model_name.into();
        let handle = std::thread::Builder::new()
            .name("zsdb-adapt".to_string())
            .spawn(move || {
                adaptation_loop(
                    &server,
                    &registry,
                    &model_name,
                    &log,
                    &config,
                    &thread_shared,
                )
            })
            .expect("failed to spawn adaptation loop");
        AdaptationLoop {
            handle: Some(handle),
            shared,
        }
    }

    /// Current progress snapshot.
    pub fn status(&self) -> AdaptationStatus {
        self.shared
            .status
            .lock()
            .expect("adaptation status poisoned")
            .clone()
    }

    /// Signal the loop to stop, wait for it to finish its current round,
    /// and return the final status.
    pub fn stop(mut self) -> AdaptationStatus {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.status()
    }

    fn signal_stop(&self) {
        *self.shared.stop.lock().expect("adaptation stop poisoned") = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for AdaptationLoop {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn adaptation_loop(
    server: &PredictionServer,
    registry: &ModelRegistry,
    model_name: &str,
    log: &ObservationLog,
    config: &AdaptationConfig,
    shared: &LoopShared,
) {
    let catalog = server.catalog().clone();
    let mut detector = DriftDetector::new(
        config.drift_threshold,
        config.drift_window.max(1),
        config.min_observations,
    );
    // Observations accumulated across polls until a fine-tune consumes
    // them.  Bounded: when fine-tuning cannot run for a while (e.g. the
    // registry keeps erroring), only the newest `max_pending` graphs are
    // kept — fine-tuning wants recent traffic anyway.
    let max_pending = config
        .min_observations
        .max(config.drift_window)
        .saturating_mul(2)
        .max(1);
    let mut pending: Vec<PlanGraph> = Vec::new();

    loop {
        // Interruptible sleep: `stop()` wakes the loop immediately.
        {
            let stop = shared.stop.lock().expect("adaptation stop poisoned");
            if *stop {
                return;
            }
            let (stop, _) = shared
                .wake
                .wait_timeout(stop, config.poll_interval)
                .expect("adaptation stop poisoned");
            if *stop {
                return;
            }
        }

        // Once the swap cap is reached the loop is done adapting: stop
        // consuming (and featurizing) observations entirely — the log
        // itself stays bounded by its reservoir.
        let swaps_done = shared
            .status
            .lock()
            .expect("adaptation status poisoned")
            .swaps;
        if config.max_swaps > 0 && swaps_done >= config.max_swaps {
            continue;
        }

        let drained = log.drain();
        if drained.is_empty() {
            continue;
        }

        // Featurize against the *live* model's featurizer and score the
        // live model's predictions against the observed runtimes.
        let served = server.model();
        let graphs: Vec<PlanGraph> = drained
            .iter()
            .map(|o| featurize_execution(&catalog, &o.payload, served.model.featurizer))
            .collect();
        let refs: Vec<&PlanGraph> = graphs.iter().collect();
        let predictions = served.model.predict_batch(&refs);
        for (prediction, observation) in predictions.iter().zip(&drained) {
            detector.record(*prediction, observation.payload.runtime_secs);
        }
        let median = detector.rolling_median();
        // Structured trace event per scoring round: the drift signal is
        // queryable next to the serving stages it explains.
        server.tracer().event(
            "adapt.drift_score",
            median,
            format!(
                "rolling median q-error over {} samples (threshold {})",
                detector.len(),
                detector.threshold()
            ),
        );
        pending.extend(graphs);
        if pending.len() > max_pending {
            let excess = pending.len() - max_pending;
            pending.drain(..excess);
        }

        {
            let mut status = shared.status.lock().expect("adaptation status poisoned");
            status.rounds += 1;
            status.observations_consumed += drained.len() as u64;
            status.last_median_qerror = median;
        }

        if !detector.drifted() || pending.len() < config.min_observations.max(1) {
            continue;
        }

        // Drift confirmed: fine-tune from the live weights, register the
        // result as a new version, promote it and swap it in.
        let finetune_started = Instant::now();
        let finetuned = Trainer::finetune_from(&served.model, &pending, config.finetune);
        let finetune_secs = finetune_started.elapsed().as_secs_f64();
        server.tracer().event(
            "adapt.finetune_secs",
            finetune_secs,
            format!(
                "fine-tuned from version {} on {} observations",
                served.version,
                pending.len()
            ),
        );
        let probe_count = config.max_probe_graphs.clamp(1, pending.len());
        let outcome = registry
            .register(model_name, &finetuned, &pending[..probe_count])
            .and_then(|version| {
                registry.promote(model_name, version)?;
                Ok(version)
            });
        let mut status = shared.status.lock().expect("adaptation status poisoned");
        match outcome {
            Ok(version) => {
                server.swap_model(finetuned, version);
                server.tracer().event(
                    "adapt.swap",
                    f64::from(version),
                    format!(
                        "adaptation swapped version {} -> {} (median q-error {median:.3})",
                        served.version, version
                    ),
                );
                detector.reset();
                pending.clear();
                status.swaps += 1;
                status.last_version = version;
            }
            Err(e) => {
                // Keep serving the old model; surface the error and let
                // the next round retry with fresh observations.
                server
                    .tracer()
                    .event("adapt.error", 0.0, format!("adaptation round failed: {e}"));
                status.last_error = Some(e.to_string());
            }
        }
    }
}

/// Roll the registry's promotion history back one step and hot-swap the
/// prior version (freshly loaded, integrity-checked) into the server.
/// Returns the version now being served; predictions are bit-identical
/// to that version's original tenure.
pub fn rollback_and_swap(
    server: &PredictionServer,
    registry: &ModelRegistry,
    model_name: &str,
) -> Result<u32, ServeError> {
    let version = registry.rollback(model_name)?;
    let model = registry.load(model_name, version)?;
    server.swap_model(model, version);
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ObservabilityConfig;
    use crate::server::ServerConfig;
    use zsdb_catalog::presets;
    use zsdb_core::features::FeaturizerConfig;
    use zsdb_core::model::ModelConfig;
    use zsdb_core::train::TrainingConfig;
    use zsdb_engine::QueryRunner;
    use zsdb_obs::FlightRecorderConfig;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    /// A hot-swap must not blur provenance: each record names the model
    /// version that actually served its request, so records straddling
    /// an adaptation swap attribute pre- and post-swap predictions to
    /// the right weights.
    #[test]
    fn provenance_straddling_a_swap_names_the_serving_version() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 6, 1);
        let graphs: Vec<_> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
            .collect();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let model = trainer.train(&graphs);
        let plans = runner.plan_workload(&queries);

        let server = PredictionServer::start_observed(
            model.clone(),
            1,
            db.catalog().clone(),
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 8,
                ..ServerConfig::default()
            },
            ObservabilityConfig {
                flight: FlightRecorderConfig {
                    // Retain every trace so explain() never races aging.
                    slow_threshold_ns: 1,
                    ..FlightRecorderConfig::default()
                },
                ..ObservabilityConfig::default()
            },
        );

        let explain_one = |plan: &zsdb_engine::PlanNode| {
            let trace = server.tracer().begin().expect("tracer enabled");
            let ticket = server.submit_traced(plan.clone(), Some(trace)).unwrap();
            let (prediction, trace) = ticket.wait_traced().unwrap();
            let done = server.complete_traced(&prediction, trace.expect("trace travels"));
            server.explain(done.id).expect("retained by 1ns threshold")
        };

        let before = explain_one(&plans[0]);
        assert_eq!(before.model_version, 1);

        // Same weights re-registered as version 2 — an adaptation swap
        // in miniature, minus the fine-tune.
        server.swap_model(model, 2);
        let after = explain_one(&plans[1]);
        assert_eq!(after.model_version, 2, "post-swap record names v2");
        assert_eq!(before.model_name, after.model_name);
        assert_ne!(before.trace_id, after.trace_id);
    }

    #[test]
    fn drift_detector_needs_min_samples_and_threshold() {
        let mut detector = DriftDetector::new(2.0, 8, 3);
        assert!(detector.is_empty());
        detector.record(1.0, 10.0); // q-error 10
        detector.record(1.0, 10.0);
        assert!(!detector.drifted(), "below min_samples");
        detector.record(1.0, 10.0);
        assert!(detector.drifted());
        assert!(detector.rolling_median() >= 2.0);
        detector.reset();
        assert!(!detector.drifted());
        assert_eq!(detector.len(), 0);
    }

    #[test]
    fn accurate_predictions_never_drift() {
        let mut detector = DriftDetector::new(1.5, 16, 1);
        for i in 1..=100 {
            let runtime = i as f64;
            detector.record(runtime * 1.05, runtime); // 5% error
        }
        assert!(!detector.drifted());
        assert!(detector.len() <= 16, "window is bounded");
    }

    #[test]
    fn median_resists_outliers_but_not_systematic_shift() {
        let mut detector = DriftDetector::new(2.0, 9, 5);
        // Eight good predictions, one catastrophic outlier: no drift.
        for _ in 0..8 {
            detector.record(1.0, 1.1);
        }
        detector.record(1.0, 1000.0);
        assert!(!detector.drifted(), "one outlier must not trigger");
        // A systematic 3× shift floods the window: drift.
        for _ in 0..9 {
            detector.record(1.0, 3.0);
        }
        assert!(detector.drifted());
    }
}
