//! Error type shared by the registry and the prediction server.

use std::fmt;

/// Everything that can go wrong while registering, loading or serving a
/// model.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem error while reading or writing registry artifacts.
    Io(std::io::Error),
    /// Artifact (de)serialization failure.
    Json(serde_json::Error),
    /// The requested model name / version does not exist in the registry.
    NotFound {
        /// Model name looked up.
        name: String,
        /// Specific version, or `None` for "latest of zero versions".
        version: Option<u32>,
    },
    /// A loaded model failed its prediction round-trip integrity check:
    /// its predictions on the stored probe graphs no longer match the
    /// bit-patterns recorded at registration time.
    IntegrityViolation {
        /// Model name.
        name: String,
        /// Artifact version.
        version: u32,
        /// Human-readable description of the first mismatch.
        details: String,
    },
    /// The artifact was written by an incompatible registry format.
    FormatVersionMismatch {
        /// Format version found in the manifest.
        found: u32,
        /// Format version this build supports.
        supported: u32,
    },
    /// A rollback was requested but the promotion history holds no
    /// earlier version to fall back to.
    RollbackUnavailable {
        /// Model name whose history is too short.
        name: String,
    },
    /// The request queue is full (backpressure): the caller should retry
    /// later or shed load.
    Overloaded,
    /// The server has shut down and can no longer accept or answer
    /// requests.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "registry I/O error: {e}"),
            ServeError::Json(e) => write!(f, "artifact serialization error: {e}"),
            ServeError::NotFound { name, version } => match version {
                Some(v) => write!(f, "model '{name}' version {v} not found"),
                None => write!(f, "model '{name}' has no registered versions"),
            },
            ServeError::IntegrityViolation {
                name,
                version,
                details,
            } => write!(
                f,
                "integrity check failed for model '{name}' v{version}: {details}"
            ),
            ServeError::FormatVersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads {supported})"
            ),
            ServeError::RollbackUnavailable { name } => write!(
                f,
                "model '{name}' has no earlier promoted version to roll back to"
            ),
            ServeError::Overloaded => write!(f, "request queue is full"),
            ServeError::Closed => write!(f, "prediction server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::NotFound {
            name: "cost".into(),
            version: Some(3),
        };
        assert!(e.to_string().contains("cost"));
        assert!(e.to_string().contains('3'));
        assert!(ServeError::Overloaded.to_string().contains("full"));
        assert!(ServeError::Closed.to_string().contains("shut down"));
        let io: ServeError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
