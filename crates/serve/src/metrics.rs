//! Serving metrics: request throughput and latency percentiles.

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many of the most recent request latencies are retained for the
/// percentile estimates.  A bounded ring keeps a long-running server's
/// memory constant (a naive grow-forever log at ~50k q/s leaks ≈ 1.5
/// GB/hour) and keeps `snapshot()` cost independent of uptime; `max` is
/// tracked separately over the whole lifetime.
pub const LATENCY_WINDOW: usize = 65_536;

/// Human-readable labels of the batch-size histogram buckets reported in
/// [`MetricsSnapshot::batch_size_histogram`].  Bucket `i` counts batches
/// whose size falls in the labelled range; single-plan requests count as
/// batches of size 1.
pub const BATCH_SIZE_BUCKET_LABELS: [&str; 8] = [
    "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
];

/// Bucket index of a batch size (log₂ buckets, capped at the last).
fn batch_size_bucket(batch_size: usize) -> usize {
    let mut bucket = 0usize;
    let mut bound = 2usize;
    while bucket + 1 < BATCH_SIZE_BUCKET_LABELS.len() && batch_size >= bound {
        bucket += 1;
        bound *= 2;
    }
    bucket
}

/// Bounded ring of recent latencies (nanoseconds).
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    /// Lifetime maximum, independent of the window.
    max_ns: u64,
}

/// Shared latency/throughput recorder, updated by every worker thread.
pub struct ServeMetrics {
    started: Instant,
    /// Nanoseconds after `started` at which the first request completed,
    /// plus one (`0` = no request yet).  Throughput is measured from this
    /// instant, not from construction — a server that idled for an hour
    /// before its first request would otherwise report a near-zero q/s
    /// forever.
    first_request_ns: AtomicU64,
    completed: AtomicU64,
    /// Requests turned away at admission (queue full or server closed).
    rejected: AtomicU64,
    ring: Mutex<LatencyRing>,
    /// Batch-size histogram (see [`BATCH_SIZE_BUCKET_LABELS`]).
    batch_sizes: [AtomicU64; BATCH_SIZE_BUCKET_LABELS.len()],
    /// Model hot-swaps performed over the server's lifetime.
    swaps: AtomicU64,
}

impl ServeMetrics {
    /// Create a recorder; throughput is measured from the first recorded
    /// request.
    pub fn new() -> Self {
        ServeMetrics {
            started: Instant::now(),
            first_request_ns: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            ring: Mutex::new(LatencyRing {
                samples: Vec::new(),
                next: 0,
                max_ns: 0,
            }),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Record one model hot-swap.
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request (or batch) turned away at admission — a
    /// `try_submit` that answered `Overloaded`, or any submission against
    /// a closed server.
    pub fn record_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed single-plan request and its queue-to-response
    /// latency (a batch of size 1 in the histogram).
    pub fn record(&self, latency: Duration) {
        self.record_batch(1, latency);
    }

    /// Record one completed batch of `batch_size` requests that shared a
    /// single enqueue-to-response latency.  Every request of the batch
    /// contributes a latency sample and counts toward throughput; the
    /// batch itself lands in one histogram bucket.
    pub fn record_batch(&self, batch_size: usize, latency: Duration) {
        if batch_size == 0 {
            return;
        }
        // First request ever: pin the throughput clock (the +1 keeps 0 as
        // the "unset" sentinel; a race just picks one of two near-equal
        // instants).
        let _ = self.first_request_ns.compare_exchange(
            0,
            (self.started.elapsed().as_nanos() as u64).saturating_add(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.batch_sizes[batch_size_bucket(batch_size)].fetch_add(1, Ordering::Relaxed);
        self.completed
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        let ns = latency.as_nanos() as u64;
        let mut ring = self.ring.lock().expect("metrics poisoned");
        ring.max_ns = ring.max_ns.max(ns);
        for _ in 0..batch_size {
            if ring.samples.len() < LATENCY_WINDOW {
                ring.samples.push(ns);
            } else {
                let slot = ring.next;
                ring.samples[slot] = ns;
            }
            ring.next = (ring.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Snapshot the current metrics, combining them with cache statistics
    /// and the worker count for a complete serving report.
    ///
    /// Percentiles are computed over the most recent [`LATENCY_WINDOW`]
    /// requests; `latency_max_ms` covers the whole server lifetime.
    pub fn snapshot(&self, cache: CacheStats, workers: usize) -> MetricsSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        let (mut latencies_ms, max_ns) = {
            let ring = self.ring.lock().expect("metrics poisoned");
            let ms: Vec<f64> = ring.samples.iter().map(|&ns| ns as f64 / 1e6).collect();
            (ms, ring.max_ns)
        };
        // One sort serves every percentile.
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total_requests = self.completed.load(Ordering::Relaxed);
        // Throughput over the active window (first completed request →
        // now), so pre-traffic idle time does not dilute q/s.
        let first_ns = self.first_request_ns.load(Ordering::Relaxed);
        let active_secs = if first_ns == 0 {
            0.0
        } else {
            (elapsed - (first_ns - 1) as f64 / 1e9).max(0.0)
        };
        MetricsSnapshot {
            total_requests,
            elapsed_secs: elapsed,
            rejected_requests: self.rejected.load(Ordering::Relaxed),
            throughput_qps: if active_secs > 0.0 {
                total_requests as f64 / active_secs
            } else {
                0.0
            },
            latency_p50_ms: percentile_of_sorted(&latencies_ms, 50.0),
            latency_p95_ms: percentile_of_sorted(&latencies_ms, 95.0),
            latency_p99_ms: percentile_of_sorted(&latencies_ms, 99.0),
            latency_max_ms: if total_requests == 0 {
                f64::NAN
            } else {
                max_ns as f64 / 1e6
            },
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            cache_invalidations: cache.invalidations,
            model_swaps: self.swaps.load(Ordering::Relaxed),
            workers,
            batch_size_histogram: self
                .batch_sizes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Linear-interpolation percentile of an already-sorted sample (same
/// definition as [`zsdb_nn::percentile`], without the per-call clone and
/// sort).  Returns `NaN` for empty input.
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// A point-in-time serving report — the payload of `BENCH_serve.json`.
///
/// Latency percentiles are `NaN` until at least one request completed
/// (serde_json renders them as `null`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests fully served since the server started.
    pub total_requests: u64,
    /// Requests turned away at admission (queue full / server closed)
    /// since the server started.
    pub rejected_requests: u64,
    /// Wall-clock seconds since the server started.
    pub elapsed_secs: f64,
    /// Completed requests per second, measured from the first completed
    /// request (0 before any traffic) — idle time before the first
    /// request does not dilute the rate.
    pub throughput_qps: f64,
    /// Median request latency (enqueue → response) in milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Worst observed latency in milliseconds.
    pub latency_max_ms: f64,
    /// Feature-cache hits.
    pub cache_hits: u64,
    /// Feature-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 before any traffic.
    pub cache_hit_rate: f64,
    /// Times the feature cache was wholesale invalidated (hot-swaps).
    pub cache_invalidations: u64,
    /// Model hot-swaps performed over the server's lifetime.
    pub model_swaps: u64,
    /// Number of worker threads serving predictions.
    pub workers: usize,
    /// Batch-size histogram: bucket `i` counts completed batches whose
    /// size falls in `BATCH_SIZE_BUCKET_LABELS[i]` (single requests are
    /// size-1 batches).
    pub batch_size_histogram: Vec<u64>,
}

/// Render a millisecond value for display: `-` when no samples exist yet
/// (the percentile is `NaN`) instead of the literal string `NaN ms`.
fn fmt_ms(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3} ms")
    } else {
        "-".to_string()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} rejected) in {:.2}s ({:.0} q/s) · latency p50 {}, p95 {}, \
             p99 {} · cache hit-rate {:.1}% ({} workers)",
            self.total_requests,
            self.rejected_requests,
            self.elapsed_secs,
            self.throughput_qps,
            fmt_ms(self.latency_p50_ms),
            fmt_ms(self.latency_p95_ms),
            fmt_ms(self.latency_p99_ms),
            self.cache_hit_rate * 100.0,
            self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_stats(hits: u64, misses: u64) -> CacheStats {
        CacheStats {
            hits,
            misses,
            len: 0,
            capacity: 16,
            invalidations: 0,
        }
    }

    #[test]
    fn snapshot_aggregates_latencies() {
        let metrics = ServeMetrics::new();
        for ms in [1u64, 2, 3, 4, 100] {
            metrics.record(Duration::from_millis(ms));
        }
        let snap = metrics.snapshot(cache_stats(3, 2), 4);
        assert_eq!(snap.total_requests, 5);
        assert_eq!(snap.workers, 4);
        assert!(snap.latency_p50_ms >= 2.0 && snap.latency_p50_ms <= 4.0);
        assert!(snap.latency_p99_ms <= snap.latency_max_ms);
        assert!(snap.latency_max_ms >= 99.0);
        assert!((snap.cache_hit_rate - 0.6).abs() < 1e-12);
        assert!(snap.throughput_qps > 0.0);
    }

    #[test]
    fn empty_snapshot_has_nan_latencies_and_zero_throughput_requests() {
        let metrics = ServeMetrics::new();
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, 0);
        assert!(snap.latency_p50_ms.is_nan());
        assert_eq!(snap.cache_hit_rate, 0.0);
    }

    #[test]
    fn latency_window_is_bounded_but_max_is_lifetime() {
        let metrics = ServeMetrics::new();
        // One early outlier, then far more than LATENCY_WINDOW fast
        // requests: the ring forgets the outlier for percentiles, but the
        // lifetime max keeps it.
        metrics.record(Duration::from_secs(2));
        for _ in 0..(LATENCY_WINDOW + 100) {
            metrics.record(Duration::from_micros(50));
        }
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, (LATENCY_WINDOW + 101) as u64);
        assert!(snap.latency_p99_ms < 1.0, "window forgot the outlier");
        assert!(snap.latency_max_ms >= 2_000.0, "lifetime max retained");
        assert_eq!(
            metrics.ring.lock().unwrap().samples.len(),
            LATENCY_WINDOW,
            "sample storage is bounded"
        );
    }

    #[test]
    fn percentile_of_sorted_matches_nn_percentile() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.5];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                percentile_of_sorted(&sorted, p),
                zsdb_nn::percentile(&samples, p)
            );
        }
        assert!(percentile_of_sorted(&[], 50.0).is_nan());
    }

    #[test]
    fn batch_sizes_land_in_log2_buckets() {
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(3), 1);
        assert_eq!(batch_size_bucket(4), 2);
        assert_eq!(batch_size_bucket(7), 2);
        assert_eq!(batch_size_bucket(32), 5);
        assert_eq!(batch_size_bucket(63), 5);
        assert_eq!(batch_size_bucket(127), 6);
        assert_eq!(batch_size_bucket(128), 7);
        assert_eq!(batch_size_bucket(100_000), 7);
    }

    #[test]
    fn record_batch_updates_histogram_and_throughput() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(10)); // size 1
        metrics.record_batch(32, Duration::from_micros(500));
        metrics.record_batch(32, Duration::from_micros(450));
        metrics.record_batch(3, Duration::from_micros(40));
        let snap = metrics.snapshot(cache_stats(0, 0), 2);
        // 1 + 32 + 32 + 3 requests completed.
        assert_eq!(snap.total_requests, 68);
        assert_eq!(
            snap.batch_size_histogram.len(),
            BATCH_SIZE_BUCKET_LABELS.len()
        );
        assert_eq!(snap.batch_size_histogram[0], 1); // "1"
        assert_eq!(snap.batch_size_histogram[1], 1); // "2-3"
        assert_eq!(snap.batch_size_histogram[5], 2); // "32-63"
        assert_eq!(snap.batch_size_histogram.iter().sum::<u64>(), 4);
        // Every request of a batch contributes one latency sample.
        assert_eq!(metrics.ring.lock().unwrap().samples.len(), 68);
        // Zero-size batches are ignored.
        metrics.record_batch(0, Duration::from_micros(1));
        assert_eq!(metrics.snapshot(cache_stats(0, 0), 2).total_requests, 68);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(1500));
        let snap = metrics.snapshot(cache_stats(1, 1), 2);
        let json = serde_json::to_string(&snap).unwrap();
        for key in [
            "throughput_qps",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "cache_hit_rate",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_requests, 1);
    }

    #[test]
    fn display_is_readable() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_millis(2));
        let text = metrics.snapshot(cache_stats(1, 0), 8).to_string();
        assert!(text.contains("8 workers"));
        assert!(text.contains("hit-rate"));
        assert!(text.contains("ms"));
    }

    #[test]
    fn display_renders_empty_percentiles_as_dash_not_nan() {
        let metrics = ServeMetrics::new();
        let text = metrics.snapshot(cache_stats(0, 0), 1).to_string();
        assert!(!text.contains("NaN"), "no literal NaN in: {text}");
        assert!(text.contains("p50 -"), "dash placeholder in: {text}");
    }

    #[test]
    fn rejections_are_counted_independently_of_completions() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(10));
        metrics.record_rejection();
        metrics.record_rejection();
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, 1);
        assert_eq!(snap.rejected_requests, 2);
        assert!(snap.to_string().contains("(2 rejected)"));
    }

    #[test]
    fn throughput_is_measured_from_the_first_request_not_construction() {
        let metrics = ServeMetrics::new();
        // Idle before the first request: this gap must not dilute q/s.
        std::thread::sleep(Duration::from_millis(120));
        for _ in 0..10 {
            metrics.record(Duration::from_micros(5));
        }
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        let diluted = snap.total_requests as f64 / snap.elapsed_secs;
        assert!(
            snap.throughput_qps > 10.0 * diluted,
            "active-window q/s ({}) should dwarf the lifetime rate ({diluted})",
            snap.throughput_qps
        );
        // No traffic yet → a defined 0, not NaN or a division by ~0.
        let idle = ServeMetrics::new().snapshot(cache_stats(0, 0), 1);
        assert_eq!(idle.throughput_qps, 0.0);
    }
}
