//! Serving metrics: request throughput, latency percentiles and
//! per-stage breakdowns.
//!
//! Recording is wait-free on the hot path: every mutable piece of
//! [`ServeMetrics`] is either a plain atomic or a per-thread striped
//! structure from [`zsdb_obs`] (counters, the queue-depth gauge, the
//! latency window, the per-stage histograms), so no worker thread ever
//! takes a lock shared with another worker to record a sample.  The old
//! design — a global `Mutex<LatencyRing>` hit on every request — was the
//! named bottleneck past a few hundred thousand q/s; shards are now
//! merged only when a snapshot or exposition is requested.

use crate::cache::CacheStats;
use crate::provenance::{ProvenanceLog, ProvenanceSeed};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use zsdb_obs::{
    render_prometheus, sanitize_metric_name, Counter, FlightClass, FlightRecorder,
    FlightRecorderConfig, Gauge, Histogram, LatencyWindow, Registry, SloConfig, SloTracker, Trace,
};
use zsdb_protocol::{WireSloStatus, WireSloWindow};

/// How many of the most recent request latencies are retained *per
/// recording thread* for the percentile estimates.  A bounded ring keeps
/// a long-running server's memory constant (a naive grow-forever log at
/// ~50k q/s leaks ≈ 1.5 GB/hour) and keeps `snapshot()` cost independent
/// of uptime; lifetime min/max are tracked separately.
pub const LATENCY_WINDOW: usize = 65_536;

/// Human-readable labels of the batch-size histogram buckets reported in
/// [`MetricsSnapshot::batch_size_histogram`].  Bucket `i` counts batches
/// whose size falls in the labelled range; single-plan requests count as
/// batches of size 1.
pub const BATCH_SIZE_BUCKET_LABELS: [&str; 8] = [
    "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
];

/// Stage name: admission control (quota + queue reservation).
pub const STAGE_ADMISSION: &str = "admission";
/// Stage name: time spent queued before a worker picked the job up.
pub const STAGE_QUEUE_WAIT: &str = "queue_wait";
/// Stage name: feature-cache probe (hit or miss decision).
pub const STAGE_CACHE_LOOKUP: &str = "cache_lookup";
/// Stage name: plan featurization on a cache miss.
pub const STAGE_FEATURIZE: &str = "featurize";
/// Stage name: the (possibly batched) model forward pass.
pub const STAGE_FORWARD: &str = "forward";
/// Stage name: response encode + socket write.
pub const STAGE_RESPOND: &str = "respond";

/// Bucket index of a batch size (log₂ buckets, capped at the last).
fn batch_size_bucket(batch_size: usize) -> usize {
    let mut bucket = 0usize;
    let mut bound = 2usize;
    while bucket + 1 < BATCH_SIZE_BUCKET_LABELS.len() && batch_size >= bound {
        bucket += 1;
        bound *= 2;
    }
    bucket
}

/// Pre-resolved histogram handles for the per-stage latency breakdown,
/// so recording a finished trace never takes the registry lock.  Cheap to
/// clone; worker and responder threads keep their own copy.
#[derive(Clone, Debug)]
pub struct StageRecorder {
    admission: Histogram,
    queue_wait: Histogram,
    cache_lookup: Histogram,
    featurize: Histogram,
    forward: Histogram,
    respond: Histogram,
    other: Histogram,
}

impl StageRecorder {
    fn new(registry: &Registry) -> Self {
        StageRecorder {
            admission: registry.histogram("serve.stage.admission_ns"),
            queue_wait: registry.histogram("serve.stage.queue_wait_ns"),
            cache_lookup: registry.histogram("serve.stage.cache_lookup_ns"),
            featurize: registry.histogram("serve.stage.featurize_ns"),
            forward: registry.histogram("serve.stage.forward_ns"),
            respond: registry.histogram("serve.stage.respond_ns"),
            other: registry.histogram("serve.stage.other_ns"),
        }
    }

    fn of(&self, stage: &str) -> &Histogram {
        match stage {
            STAGE_ADMISSION => &self.admission,
            STAGE_QUEUE_WAIT => &self.queue_wait,
            STAGE_CACHE_LOOKUP => &self.cache_lookup,
            STAGE_FEATURIZE => &self.featurize,
            STAGE_FORWARD => &self.forward,
            STAGE_RESPOND => &self.respond,
            _ => &self.other,
        }
    }

    /// Record one stage duration (nanoseconds).
    pub fn record(&self, stage: &str, ns: u64) {
        self.of(stage).record(ns);
    }

    /// Feed every stage of a finished trace into the stage histograms,
    /// stamping each bucket with the trace id as its exemplar — a
    /// latency bucket in the exposition links back to a concrete recent
    /// request answerable by the `Explain` op.
    pub fn record_trace(&self, trace: &Trace) {
        for stage in &trace.stages {
            self.of(stage.name)
                .record_with_exemplar(stage.duration_ns, trace.id);
        }
    }
}

/// Observability tunables of a server: flight-recorder retention and the
/// SLO the burn-rate windows are measured against.
#[derive(Debug, Clone, Default)]
pub struct ObservabilityConfig {
    /// Flight-recorder ring sizes and slow-request triggers.
    pub flight: FlightRecorderConfig,
    /// Latency/availability objective and rolling window lengths.
    pub slo: SloConfig,
}

/// Shared latency/throughput recorder, updated by every worker thread.
pub struct ServeMetrics {
    started: Instant,
    /// Nanoseconds after `started` at which the first request completed,
    /// plus one (`0` = no request yet).  Throughput is measured from this
    /// instant, not from construction — a server that idled for an hour
    /// before its first request would otherwise report a near-zero q/s
    /// forever.
    first_request_ns: AtomicU64,
    completed: Counter,
    /// Requests turned away at admission (queue full or server closed).
    rejected: Counter,
    /// Recent latencies (per-thread rings) + lifetime min/max.
    window: LatencyWindow,
    /// Jobs currently sitting in the bounded queue (enqueue/dequeue
    /// deltas, possibly from different threads).
    queue_depth: Gauge,
    /// Batch-size histogram (see [`BATCH_SIZE_BUCKET_LABELS`]).
    batch_sizes: [AtomicU64; BATCH_SIZE_BUCKET_LABELS.len()],
    /// Model hot-swaps performed over the server's lifetime.
    swaps: Counter,
    /// Named registry behind the counters/gauge/stage histograms — the
    /// source of the Prometheus exposition.
    registry: Registry,
    stages: StageRecorder,
    /// Slow-request flight recorder: classifies every completion on the
    /// warm path, retains slow/failed traces on the cold path.
    flight: FlightRecorder,
    /// Rolling good/bad windows against the configured latency SLO.
    slo: SloTracker,
    /// Assembled provenance records of traced requests.
    provenance: ProvenanceLog,
}

impl ServeMetrics {
    /// Create a recorder with default observability settings; throughput
    /// is measured from the first recorded request.
    pub fn new() -> Self {
        ServeMetrics::with_observability(ObservabilityConfig::default())
    }

    /// Create a recorder with explicit flight-recorder and SLO settings.
    pub fn with_observability(config: ObservabilityConfig) -> Self {
        let registry = Registry::new();
        registry.describe("serve.requests_total", "Requests fully served");
        registry.describe(
            "serve.rejected_total",
            "Requests turned away at admission (queue full or server closed)",
        );
        registry.describe("serve.queue_depth", "Jobs in the bounded request queues");
        registry.describe(
            "serve.model_swaps_total",
            "Model hot-swaps over the server lifetime",
        );
        let stages = StageRecorder::new(&registry);
        let flight = FlightRecorder::new(config.flight);
        ServeMetrics {
            started: Instant::now(),
            first_request_ns: AtomicU64::new(0),
            completed: registry.counter("serve.requests_total"),
            rejected: registry.counter("serve.rejected_total"),
            window: LatencyWindow::new(LATENCY_WINDOW),
            queue_depth: registry.gauge("serve.queue_depth"),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            swaps: registry.counter("serve.model_swaps_total"),
            registry,
            stages,
            provenance: ProvenanceLog::new(
                config.flight.recent_capacity.max(1),
                config.flight.slow_capacity.max(1),
            ),
            flight,
            slo: SloTracker::new(config.slo),
        }
    }

    /// Record one model hot-swap.
    pub fn record_swap(&self) {
        self.swaps.inc();
    }

    /// Record one request (or batch) turned away at admission — a
    /// `try_submit` that answered `Overloaded`, or any submission against
    /// a closed server.  Rejections burn the SLO error budget.
    pub fn record_rejection(&self) {
        self.rejected.inc();
        self.slo.record(0, false);
    }

    /// Record one completed single-plan request and its queue-to-response
    /// latency (a batch of size 1 in the histogram).  Returns the flight
    /// recorder's verdict so the caller can attach it to the prediction.
    pub fn record(&self, latency: Duration) -> FlightClass {
        self.record_batch(1, latency)
    }

    /// Record one completed batch of `batch_size` requests that shared a
    /// single enqueue-to-response latency.  Every request of the batch
    /// contributes a latency sample, an SLO good/bad event and counts
    /// toward throughput; the batch itself lands in one histogram bucket
    /// and is classified once by the flight recorder.  Wait-free and
    /// allocation-free (the warm-path half of slow-request retention).
    pub fn record_batch(&self, batch_size: usize, latency: Duration) -> FlightClass {
        if batch_size == 0 {
            return FlightClass::Normal;
        }
        // First request ever: pin the throughput clock (the +1 keeps 0 as
        // the "unset" sentinel; a race just picks one of two near-equal
        // instants).
        let _ = self.first_request_ns.compare_exchange(
            0,
            (self.started.elapsed().as_nanos() as u64).saturating_add(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.batch_sizes[batch_size_bucket(batch_size)].fetch_add(1, Ordering::Relaxed);
        self.completed.add(batch_size as u64);
        let ns = latency.as_nanos() as u64;
        for _ in 0..batch_size {
            self.window.record(ns);
            self.slo.record(ns, true);
        }
        self.flight.classify(ns, true)
    }

    /// Cold-path bookkeeping for one finished traced request: feed the
    /// stage histograms (with the trace id as exemplar), retain the trace
    /// in the flight recorder under its classification, and assemble +
    /// log the prediction's [`ProvenanceRecord`](zsdb_protocol::ProvenanceRecord).
    pub fn record_completed_trace(&self, seed: &ProvenanceSeed, done: &Trace) {
        self.stages.record_trace(done);
        self.flight.offer(done.clone(), seed.class);
        self.provenance.record(seed, done);
    }

    /// The slow-request flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The SLO burn-rate tracker.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// The provenance log behind the `Explain`/`SlowLog` ops.
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.provenance
    }

    /// The server's SLO position in wire form (the `SloStatusOk`
    /// payload).
    pub fn slo_status(&self) -> WireSloStatus {
        let snap = self.slo.snapshot();
        WireSloStatus {
            latency_objective_ns: snap.latency_objective_ns,
            target: snap.target,
            windows: snap
                .windows
                .iter()
                .map(|w| WireSloWindow {
                    window_secs: w.window_secs,
                    good: w.good,
                    bad: w.bad,
                    error_rate: w.error_rate,
                    burn_rate: w.burn_rate,
                })
                .collect(),
        }
    }

    /// Handle on the queue-depth gauge (incremented at enqueue,
    /// decremented at dequeue — possibly by different threads).
    pub fn queue_gauge(&self) -> Gauge {
        self.queue_depth.clone()
    }

    /// Handle on the queue-depth gauge of one server shard, registered
    /// as `serve.shard.N.queue_depth`.  The sharded server increments it
    /// when a job enters shard `N`'s queue and decrements it at dequeue
    /// (by the owning worker or a stealer); the gauges surface both in
    /// the Prometheus exposition and, ordered by shard index, in
    /// [`MetricsSnapshot::shard_queue_depths`].
    pub fn shard_queue_gauge(&self, shard: usize) -> Gauge {
        self.registry
            .gauge(&format!("serve.shard.{shard}.queue_depth"))
    }

    /// One job entered the bounded queue.
    pub fn queue_inc(&self) {
        self.queue_depth.inc();
    }

    /// One job left the bounded queue (dequeued by a worker).
    pub fn queue_dec(&self) {
        self.queue_depth.dec();
    }

    /// Handle on the per-stage histogram recorder.
    pub fn stage_recorder(&self) -> StageRecorder {
        self.stages.clone()
    }

    /// The named-metric registry behind this recorder (counters, queue
    /// gauge, stage histograms) — snapshot it for custom exports.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Wall-clock seconds since the recorder (server) was constructed.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Snapshot the current metrics, combining them with cache statistics
    /// and the worker count for a complete serving report.
    ///
    /// Percentiles are computed over each recording thread's most recent
    /// [`LATENCY_WINDOW`] requests; `latency_min_ms`/`latency_max_ms`
    /// cover the whole server lifetime.
    pub fn snapshot(&self, cache: CacheStats, workers: usize) -> MetricsSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        let window = self.window.snapshot();
        let mut latencies_ms: Vec<f64> = window.samples.iter().map(|&ns| ns as f64 / 1e6).collect();
        // One sort serves every percentile.
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total_requests = self.completed.value();
        // Throughput over the active window (first completed request →
        // now), so pre-traffic idle time does not dilute q/s.
        let first_ns = self.first_request_ns.load(Ordering::Relaxed);
        let active_secs = if first_ns == 0 {
            0.0
        } else {
            (elapsed - (first_ns - 1) as f64 / 1e9).max(0.0)
        };
        // Per-shard queue depths, collected from the registry's
        // `serve.shard.N.queue_depth` gauges and ordered by shard index
        // (empty for unsharded recorders like the multi-task server).
        let mut shard_depths: Vec<(usize, u64)> = self
            .registry
            .snapshot()
            .gauges
            .iter()
            .filter_map(|(name, value)| {
                let index = name
                    .strip_prefix("serve.shard.")?
                    .strip_suffix(".queue_depth")?
                    .parse()
                    .ok()?;
                Some((index, (*value).max(0) as u64))
            })
            .collect();
        shard_depths.sort_unstable_by_key(|&(index, _)| index);
        let slo = self.slo_status();
        MetricsSnapshot {
            total_requests,
            elapsed_secs: elapsed,
            uptime_seconds: elapsed,
            rejected_requests: self.rejected.value(),
            throughput_qps: if active_secs > 0.0 {
                total_requests as f64 / active_secs
            } else {
                0.0
            },
            queue_depth: self.queue_depth.value().max(0) as u64,
            latency_p50_ms: percentile_of_sorted(&latencies_ms, 50.0),
            latency_p95_ms: percentile_of_sorted(&latencies_ms, 95.0),
            latency_p99_ms: percentile_of_sorted(&latencies_ms, 99.0),
            latency_min_ms: window.min.map_or(f64::NAN, |ns| ns as f64 / 1e6),
            latency_max_ms: if window.count == 0 {
                f64::NAN
            } else {
                window.max as f64 / 1e6
            },
            window_occupancy: window.occupancy,
            window_capacity: window.capacity,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            cache_invalidations: cache.invalidations,
            model_swaps: self.swaps.value(),
            workers,
            shard_queue_depths: shard_depths.into_iter().map(|(_, depth)| depth).collect(),
            batch_size_histogram: self
                .batch_sizes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            slow_requests_retained: self.flight.slow_len() as u64,
            slo_latency_objective_ns: slo.latency_objective_ns,
            slo_target: slo.target,
            slo_windows: slo.windows,
        }
    }

    /// Render everything as Prometheus text exposition: the registry
    /// (request counters, queue gauge, per-stage histograms) plus derived
    /// summary series (percentiles, throughput, cache stats, the labelled
    /// batch-size histogram).
    pub fn prometheus_text(&self, cache: CacheStats, workers: usize) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot(cache, workers);
        let mut out = render_prometheus(&self.registry.snapshot());
        // Derived series run through the same sanitizer as registry
        // names, so every emitted name obeys the exposition charset no
        // matter how it was spelled here.
        let mut gauge = |name: &str, value: f64| {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(
                out,
                "{name} {}",
                if value.is_finite() { value } else { 0.0 }
            );
        };
        gauge("serve_uptime_seconds", snap.uptime_seconds);
        gauge("serve_throughput_qps", snap.throughput_qps);
        gauge("serve_latency_p50_ms", snap.latency_p50_ms);
        gauge("serve_latency_p95_ms", snap.latency_p95_ms);
        gauge("serve_latency_p99_ms", snap.latency_p99_ms);
        gauge("serve_latency_min_ms", snap.latency_min_ms);
        gauge("serve_latency_max_ms", snap.latency_max_ms);
        gauge("serve_window_occupancy", snap.window_occupancy as f64);
        gauge("serve_window_capacity", snap.window_capacity as f64);
        gauge("serve_cache_hit_rate", snap.cache_hit_rate);
        gauge("serve_workers", snap.workers as f64);
        let _ = writeln!(out, "# TYPE serve_cache_hits_total counter");
        let _ = writeln!(out, "serve_cache_hits_total {}", snap.cache_hits);
        let _ = writeln!(out, "# TYPE serve_cache_misses_total counter");
        let _ = writeln!(out, "serve_cache_misses_total {}", snap.cache_misses);
        let _ = writeln!(out, "# TYPE serve_batch_size counter");
        for (label, count) in BATCH_SIZE_BUCKET_LABELS
            .iter()
            .zip(&snap.batch_size_histogram)
        {
            let _ = writeln!(out, "serve_batch_size{{bucket=\"{label}\"}} {count}");
        }
        // Slow-request retention and SLO burn rates.
        let _ = writeln!(out, "# TYPE serve_slow_requests_retained gauge");
        let _ = writeln!(
            out,
            "serve_slow_requests_retained {}",
            snap.slow_requests_retained
        );
        let _ = writeln!(out, "# TYPE serve_slo_latency_objective_ns gauge");
        let _ = writeln!(
            out,
            "serve_slo_latency_objective_ns {}",
            snap.slo_latency_objective_ns
        );
        let _ = writeln!(out, "# TYPE serve_slo_target gauge");
        let _ = writeln!(out, "serve_slo_target {}", snap.slo_target);
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        let _ = writeln!(out, "# TYPE serve_slo_error_rate gauge");
        for window in &snap.slo_windows {
            let _ = writeln!(
                out,
                "serve_slo_error_rate{{window=\"{}s\"}} {}",
                window.window_secs,
                finite(window.error_rate)
            );
        }
        let _ = writeln!(out, "# TYPE serve_slo_burn_rate gauge");
        for window in &snap.slo_windows {
            let _ = writeln!(
                out,
                "serve_slo_burn_rate{{window=\"{}s\"}} {}",
                window.window_secs,
                finite(window.burn_rate)
            );
        }
        out
    }
}

/// Linear-interpolation percentile of an already-sorted sample (same
/// definition as [`zsdb_nn::percentile`], without the per-call clone and
/// sort).  Returns `NaN` for empty input.
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// A point-in-time serving report — the payload of `BENCH_serve.json`.
///
/// Latency percentiles are `NaN` until at least one request completed
/// (serde_json renders them as `null`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests fully served since the server started.
    pub total_requests: u64,
    /// Requests turned away at admission (queue full / server closed)
    /// since the server started.
    pub rejected_requests: u64,
    /// Wall-clock seconds since the server started.
    pub elapsed_secs: f64,
    /// Wall-clock seconds since the server started (same clock as
    /// `elapsed_secs`; kept as its own field so wire consumers get the
    /// conventional name).
    pub uptime_seconds: f64,
    /// Completed requests per second, measured from the first completed
    /// request (0 before any traffic) — idle time before the first
    /// request does not dilute the rate.
    pub throughput_qps: f64,
    /// Requests sitting in the bounded queue right now (live gauge).
    pub queue_depth: u64,
    /// Median request latency (enqueue → response) in milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Best observed latency in milliseconds, over the whole lifetime
    /// (`NaN` until a request completes).
    pub latency_min_ms: f64,
    /// Worst observed latency in milliseconds, over the whole lifetime.
    pub latency_max_ms: f64,
    /// Latency samples currently held in the percentile window — with
    /// `window_capacity`, distinguishes a cold ring from a saturated one.
    pub window_occupancy: usize,
    /// Total window slots across the rings of every recording thread.
    pub window_capacity: usize,
    /// Feature-cache hits.
    pub cache_hits: u64,
    /// Feature-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 before any traffic.
    pub cache_hit_rate: f64,
    /// Times the feature cache was wholesale invalidated (hot-swaps).
    pub cache_invalidations: u64,
    /// Model hot-swaps performed over the server's lifetime.
    pub model_swaps: u64,
    /// Number of worker threads serving predictions.
    pub workers: usize,
    /// Live queue depth of each server shard, ordered by shard index —
    /// shard `i` corresponds to the `serve.shard.i.queue_depth` gauge.
    /// Empty for unsharded recorders (e.g. the multi-task server).
    pub shard_queue_depths: Vec<u64>,
    /// Batch-size histogram: bucket `i` counts completed batches whose
    /// size falls in `BATCH_SIZE_BUCKET_LABELS[i]` (single requests are
    /// size-1 batches).
    pub batch_size_histogram: Vec<u64>,
    /// Slow/failed requests currently retained by the flight recorder
    /// (answerable through the `SlowLog` op).
    pub slow_requests_retained: u64,
    /// Latency objective (nanoseconds) a request must meet to count as
    /// an SLO-good event.
    pub slo_latency_objective_ns: u64,
    /// Configured availability target in `(0, 1)`.
    pub slo_target: f64,
    /// SLO good/bad counts and burn rate per rolling window, shortest
    /// window first.
    pub slo_windows: Vec<WireSloWindow>,
}

/// Render a millisecond value for display: `-` when no samples exist yet
/// (the percentile is `NaN`) instead of the literal string `NaN ms`.
fn fmt_ms(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3} ms")
    } else {
        "-".to_string()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} rejected, {} queued) in {:.2}s up ({:.0} q/s) · latency \
             min {}, p50 {}, p95 {}, p99 {} · cache hit-rate {:.1}% ({} workers)",
            self.total_requests,
            self.rejected_requests,
            self.queue_depth,
            self.uptime_seconds,
            self.throughput_qps,
            fmt_ms(self.latency_min_ms),
            fmt_ms(self.latency_p50_ms),
            fmt_ms(self.latency_p95_ms),
            fmt_ms(self.latency_p99_ms),
            self.cache_hit_rate * 100.0,
            self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_stats(hits: u64, misses: u64) -> CacheStats {
        CacheStats {
            hits,
            misses,
            len: 0,
            capacity: 16,
            invalidations: 0,
        }
    }

    #[test]
    fn snapshot_aggregates_latencies() {
        let metrics = ServeMetrics::new();
        for ms in [1u64, 2, 3, 4, 100] {
            metrics.record(Duration::from_millis(ms));
        }
        let snap = metrics.snapshot(cache_stats(3, 2), 4);
        assert_eq!(snap.total_requests, 5);
        assert_eq!(snap.workers, 4);
        assert!(snap.latency_p50_ms >= 2.0 && snap.latency_p50_ms <= 4.0);
        assert!(snap.latency_p99_ms <= snap.latency_max_ms);
        assert!(snap.latency_max_ms >= 99.0);
        assert!(snap.latency_min_ms <= 1.1, "lifetime min tracked");
        assert!((snap.cache_hit_rate - 0.6).abs() < 1e-12);
        assert!(snap.throughput_qps > 0.0);
        assert!(snap.uptime_seconds > 0.0);
        assert_eq!(snap.window_occupancy, 5);
    }

    #[test]
    fn empty_snapshot_has_nan_latencies_and_zero_throughput_requests() {
        let metrics = ServeMetrics::new();
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, 0);
        assert!(snap.latency_p50_ms.is_nan());
        assert!(snap.latency_min_ms.is_nan());
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.window_occupancy, 0);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn latency_window_is_bounded_but_min_max_are_lifetime() {
        let metrics = ServeMetrics::new();
        // One early outlier and one early best-case, then far more than
        // LATENCY_WINDOW mid-range requests: the ring forgets both for
        // percentiles, but the lifetime extremes keep them.
        metrics.record(Duration::from_secs(2));
        metrics.record(Duration::from_nanos(500));
        for _ in 0..(LATENCY_WINDOW + 100) {
            metrics.record(Duration::from_micros(50));
        }
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, (LATENCY_WINDOW + 102) as u64);
        assert!(snap.latency_p99_ms < 1.0, "window forgot the outlier");
        assert!(snap.latency_max_ms >= 2_000.0, "lifetime max retained");
        assert!(snap.latency_min_ms <= 0.001, "lifetime min retained");
        assert_eq!(
            snap.window_occupancy, LATENCY_WINDOW,
            "sample storage is bounded"
        );
        assert_eq!(snap.window_capacity, LATENCY_WINDOW, "single-thread ring");
    }

    #[test]
    fn window_occupancy_distinguishes_cold_from_saturated() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(10));
        let cold = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(cold.window_occupancy, 1);
        assert_eq!(cold.window_capacity, LATENCY_WINDOW);
        assert!(cold.window_occupancy < cold.window_capacity, "cold ring");
    }

    #[test]
    fn recording_from_many_threads_matches_single_thread_totals() {
        // Striped-shard merge determinism: the same samples recorded from
        // 1 thread and from N threads must yield identical totals and
        // identical lifetime extremes.
        let single = ServeMetrics::new();
        for i in 0..400u64 {
            single.record(Duration::from_micros(10 + i % 90));
        }
        let striped = std::sync::Arc::new(ServeMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = std::sync::Arc::clone(&striped);
                std::thread::spawn(move || {
                    for i in (t * 100)..((t + 1) * 100) {
                        m.record(Duration::from_micros(10 + i % 90));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let a = single.snapshot(cache_stats(0, 0), 1);
        let b = striped.snapshot(cache_stats(0, 0), 4);
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.latency_min_ms, b.latency_min_ms);
        assert_eq!(a.latency_max_ms, b.latency_max_ms);
        assert_eq!(a.window_occupancy, b.window_occupancy);
        assert_eq!(b.window_capacity, 4 * LATENCY_WINDOW, "one ring per thread");
    }

    #[test]
    fn percentile_of_sorted_matches_nn_percentile() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.5];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                percentile_of_sorted(&sorted, p),
                zsdb_nn::percentile(&samples, p)
            );
        }
        assert!(percentile_of_sorted(&[], 50.0).is_nan());
    }

    #[test]
    fn batch_sizes_land_in_log2_buckets() {
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(3), 1);
        assert_eq!(batch_size_bucket(4), 2);
        assert_eq!(batch_size_bucket(7), 2);
        assert_eq!(batch_size_bucket(8), 3);
        assert_eq!(batch_size_bucket(15), 3);
        assert_eq!(batch_size_bucket(16), 4);
        assert_eq!(batch_size_bucket(31), 4);
        assert_eq!(batch_size_bucket(32), 5);
        assert_eq!(batch_size_bucket(63), 5);
        assert_eq!(batch_size_bucket(64), 6);
        assert_eq!(batch_size_bucket(127), 6);
        assert_eq!(batch_size_bucket(128), 7);
        assert_eq!(batch_size_bucket(100_000), 7);
        assert_eq!(batch_size_bucket(usize::MAX), 7);
    }

    #[test]
    fn record_batch_updates_histogram_and_throughput() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(10)); // size 1
        metrics.record_batch(32, Duration::from_micros(500));
        metrics.record_batch(32, Duration::from_micros(450));
        metrics.record_batch(3, Duration::from_micros(40));
        let snap = metrics.snapshot(cache_stats(0, 0), 2);
        // 1 + 32 + 32 + 3 requests completed.
        assert_eq!(snap.total_requests, 68);
        assert_eq!(
            snap.batch_size_histogram.len(),
            BATCH_SIZE_BUCKET_LABELS.len()
        );
        assert_eq!(snap.batch_size_histogram[0], 1); // "1"
        assert_eq!(snap.batch_size_histogram[1], 1); // "2-3"
        assert_eq!(snap.batch_size_histogram[5], 2); // "32-63"
        assert_eq!(snap.batch_size_histogram.iter().sum::<u64>(), 4);
        // Every request of a batch contributes one latency sample.
        assert_eq!(snap.window_occupancy, 68);
        // Zero-size batches are ignored.
        metrics.record_batch(0, Duration::from_micros(1));
        assert_eq!(metrics.snapshot(cache_stats(0, 0), 2).total_requests, 68);
    }

    #[test]
    fn queue_gauge_tracks_enqueue_dequeue_across_threads() {
        let metrics = ServeMetrics::new();
        let gauge = metrics.queue_gauge();
        gauge.inc();
        gauge.inc();
        gauge.inc();
        let dec_side = metrics.queue_gauge();
        std::thread::spawn(move || dec_side.dec()).join().unwrap();
        assert_eq!(metrics.snapshot(cache_stats(0, 0), 1).queue_depth, 2);
    }

    #[test]
    fn shard_queue_gauges_surface_in_snapshot_ordered_by_index() {
        let metrics = ServeMetrics::new();
        // Register out of order to prove the snapshot sorts by index
        // (registries typically return gauges in registration order).
        let g2 = metrics.shard_queue_gauge(2);
        let g0 = metrics.shard_queue_gauge(0);
        let g1 = metrics.shard_queue_gauge(1);
        g0.inc();
        g1.inc();
        g1.inc();
        g2.inc();
        g2.inc();
        g2.inc();
        let snap = metrics.snapshot(cache_stats(0, 0), 3);
        assert_eq!(snap.shard_queue_depths, vec![1, 2, 3]);
        // An unsharded recorder reports no shard depths.
        let plain = ServeMetrics::new().snapshot(cache_stats(0, 0), 1);
        assert!(plain.shard_queue_depths.is_empty());
        // The gauges also ride along in the Prometheus exposition.
        let text = metrics.prometheus_text(cache_stats(0, 0), 3);
        assert!(text.contains("serve_shard_1_queue_depth 2"), "{text}");
    }

    #[test]
    fn stage_recorder_feeds_named_histograms() {
        let metrics = ServeMetrics::new();
        let stages = metrics.stage_recorder();
        stages.record(STAGE_QUEUE_WAIT, 1_000);
        stages.record(STAGE_FORWARD, 5_000);
        stages.record("never_heard_of_it", 9);
        let snap = metrics.registry().snapshot();
        let histogram = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(histogram("serve.stage.queue_wait_ns").count, 1);
        assert_eq!(histogram("serve.stage.queue_wait_ns").sum, 1_000);
        assert_eq!(histogram("serve.stage.forward_ns").count, 1);
        assert_eq!(histogram("serve.stage.other_ns").count, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(1500));
        let snap = metrics.snapshot(cache_stats(1, 1), 2);
        let json = serde_json::to_string(&snap).unwrap();
        for key in [
            "throughput_qps",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "latency_min_ms",
            "cache_hit_rate",
            "uptime_seconds",
            "queue_depth",
            "window_occupancy",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_requests, 1);
    }

    #[test]
    fn prometheus_text_covers_registry_and_derived_series() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(100));
        metrics.record_batch(3, Duration::from_micros(200));
        metrics.stage_recorder().record(STAGE_FORWARD, 42_000);
        let text = metrics.prometheus_text(cache_stats(1, 1), 2);
        assert!(text.contains("serve_requests_total 4"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_stage_forward_ns_count 1"));
        assert!(text.contains("serve_uptime_seconds"));
        assert!(text.contains("serve_throughput_qps"));
        assert!(text.contains("serve_batch_size{bucket=\"2-3\"} 1"));
        assert!(!text.contains("NaN"), "non-finite values render as 0");
    }

    #[test]
    fn display_is_readable() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_millis(2));
        let text = metrics.snapshot(cache_stats(1, 0), 8).to_string();
        assert!(text.contains("8 workers"));
        assert!(text.contains("hit-rate"));
        assert!(text.contains("ms"));
        assert!(text.contains("queued"));
    }

    #[test]
    fn display_renders_empty_percentiles_as_dash_not_nan() {
        let metrics = ServeMetrics::new();
        let text = metrics.snapshot(cache_stats(0, 0), 1).to_string();
        assert!(!text.contains("NaN"), "no literal NaN in: {text}");
        assert!(text.contains("p50 -"), "dash placeholder in: {text}");
        assert!(text.contains("min -"), "dash placeholder for min: {text}");
    }

    #[test]
    fn rejections_are_counted_independently_of_completions() {
        let metrics = ServeMetrics::new();
        metrics.record(Duration::from_micros(10));
        metrics.record_rejection();
        metrics.record_rejection();
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(snap.total_requests, 1);
        assert_eq!(snap.rejected_requests, 2);
        assert!(snap.to_string().contains("(2 rejected"));
    }

    fn observed_metrics() -> ServeMetrics {
        ServeMetrics::with_observability(ObservabilityConfig {
            flight: FlightRecorderConfig {
                slow_capacity: 8,
                recent_capacity: 8,
                slow_threshold_ns: 1_000_000,
                percentile: 0.0,
                min_samples: 0,
            },
            slo: SloConfig {
                latency_objective_ns: 1_000_000,
                target: 0.99,
                windows: vec![Duration::from_secs(60)],
            },
        })
    }

    #[test]
    fn completions_feed_the_slo_and_classify_against_the_threshold() {
        let metrics = observed_metrics();
        assert_eq!(
            metrics.record(Duration::from_micros(10)),
            FlightClass::Normal
        );
        assert_eq!(
            metrics.record(Duration::from_millis(5)),
            FlightClass::SlowThreshold
        );
        metrics.record_rejection();
        let slo = metrics.slo_status();
        assert_eq!(slo.latency_objective_ns, 1_000_000);
        assert_eq!(slo.windows.len(), 1);
        // 1 good (fast), 2 bad (over-objective completion + rejection).
        assert_eq!(slo.windows[0].good, 1);
        assert_eq!(slo.windows[0].bad, 2);
        assert!(slo.windows[0].burn_rate > 1.0, "budget burning fast");
    }

    #[test]
    fn completed_traces_retain_provenance_and_surface_in_the_snapshot() {
        let metrics = observed_metrics();
        let tracer = zsdb_obs::Tracer::new(8);
        let mut t = tracer.begin_with_id(321);
        std::thread::sleep(Duration::from_millis(2));
        t.mark(STAGE_FORWARD);
        let done = tracer.finish(t);
        let class = metrics.record(Duration::from_nanos(done.total_ns));
        assert_eq!(class, FlightClass::SlowThreshold);
        let seed = crate::provenance::ProvenanceSeed {
            fingerprint: 7,
            model_version: 2,
            cache_hit: false,
            home_shard: 0,
            executed_shard: 1,
            stolen: true,
            predicted_secs: 0.5,
            class,
        };
        metrics.record_completed_trace(&seed, &done);
        // Explain path: the record is findable and complete.
        let record = metrics.provenance().find(321).expect("retained");
        assert_eq!(record.model_version, 2);
        assert!(record.stolen);
        // Flight recorder kept the raw trace too.
        assert_eq!(metrics.flight().slow_len(), 1);
        // The stage histogram bucket carries the trace id as exemplar.
        let snap = metrics.registry().snapshot();
        let (_, forward) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.stage.forward_ns")
            .expect("forward histogram");
        assert!(forward.exemplars.contains(&321));
        // And the serving snapshot reports retention + SLO position.
        let report = metrics.snapshot(cache_stats(0, 0), 1);
        assert_eq!(report.slow_requests_retained, 1);
        assert_eq!(report.slo_latency_objective_ns, 1_000_000);
        assert_eq!(report.slo_windows.len(), 1);
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slow_requests_retained, 1);
        assert_eq!(back.slo_windows, report.slo_windows);
    }

    #[test]
    fn prometheus_text_exposes_help_slo_and_slow_log_series() {
        let metrics = observed_metrics();
        metrics.record(Duration::from_micros(10));
        metrics.record(Duration::from_millis(5));
        let text = metrics.prometheus_text(cache_stats(0, 0), 1);
        assert!(
            text.contains("# HELP serve_requests_total Requests fully served"),
            "described registry metrics emit HELP: {text}"
        );
        assert!(text.contains("serve_slow_requests_retained"));
        assert!(text.contains("serve_slo_target 0.99"));
        assert!(text.contains("serve_slo_error_rate{window=\"60s\"}"));
        assert!(text.contains("serve_slo_burn_rate{window=\"60s\"}"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn throughput_is_measured_from_the_first_request_not_construction() {
        let metrics = ServeMetrics::new();
        // Idle before the first request: this gap must not dilute q/s.
        std::thread::sleep(Duration::from_millis(120));
        for _ in 0..10 {
            metrics.record(Duration::from_micros(5));
        }
        let snap = metrics.snapshot(cache_stats(0, 0), 1);
        let diluted = snap.total_requests as f64 / snap.elapsed_secs;
        assert!(
            snap.throughput_qps > 10.0 * diluted,
            "active-window q/s ({}) should dwarf the lifetime rate ({diluted})",
            snap.throughput_qps
        );
        // No traffic yet → a defined 0, not NaN or a division by ~0.
        let idle = ServeMetrics::new().snapshot(cache_stats(0, 0), 1);
        assert_eq!(idle.throughput_qps, 0.0);
    }
}
