//! Persistent, versioned model registry.
//!
//! A registered model becomes an on-disk *artifact directory*
//!
//! ```text
//! <root>/<model-name>/v0001/
//! ├── manifest.json   — provenance + integrity probes
//! └── model.json      — the full TrainedModel (weights, featurizer, curve)
//! ```
//!
//! Versions are monotonically increasing per model name; re-registering
//! under the same name creates the next version instead of overwriting.
//!
//! **Integrity probes.**  At registration time the registry records, for a
//! handful of probe plan graphs, the exact bit-pattern of the model's
//! prediction.  [`ModelRegistry::load`] re-runs those predictions and
//! refuses to return a model whose outputs changed — catching artifact
//! corruption, lossy float round-trips, or a drifted inference
//! implementation before bad predictions ever reach a client.
//!
//! **Multi-task artifacts.**  A [`TrainedMultiTaskModel`] is
//! registered through [`ModelRegistry::register_multitask`] into the same
//! name/version scheme, as `multitask_manifest.json` +
//! `multitask_model.json`; its integrity probes record the bit-patterns of
//! **every head** (cost, root cardinality, per-operator cardinalities),
//! all re-verified on [`ModelRegistry::load_multitask`].
//!
//! **Version lifecycle.**  Every version moves through three states:
//!
//! 1. **registered** — the artifact exists on disk and passes its
//!    integrity probes, but nothing serves it;
//! 2. **promoted (active)** — [`ModelRegistry::promote`] appended it to
//!    the model's promotion history (`<root>/<name>/promotions.json`,
//!    written atomically); [`ModelRegistry::active_version`] resolves to
//!    the newest promoted version (falling back to the newest registered
//!    one when nothing was ever promoted).  The online adaptation loop
//!    promotes every fine-tuned version it hot-swaps in;
//! 3. **superseded / rolled back** — a later promotion supersedes the
//!    version, or [`ModelRegistry::rollback`] pops the history back to
//!    its predecessor.  Artifacts are never deleted, so any historical
//!    version can be inspected, re-promoted, or served again
//!    bit-identically.

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use zsdb_core::features::PlanGraph;
use zsdb_core::fingerprint::graph_fingerprint;
use zsdb_core::model::ModelConfig;
use zsdb_core::train::TrainedModel;
use zsdb_core::FeaturizerConfig;
use zsdb_multitask::{MultiTaskConfig, TaskHead, TrainedMultiTaskModel};

/// On-disk artifact format version understood by this build.
///
/// Version history:
/// * **1** — initial format.
/// * **2** — `TrainedModel` gained the `validation_curve` and
///   `stopped_early` training-statistics fields (batched trainer);
///   version-1 artifacts lack them and cannot be deserialized, so they
///   are rejected with a clean
///   [`ServeError::FormatVersionMismatch`](crate::ServeError) instead of
///   a parse error.
/// * **3** — the model weights are restructured around the shared
///   [`PlanEncoder`](zsdb_core::PlanEncoder) (the `zsdb_multitask`
///   subsystem), changing the serialized `ZeroShotCostModel` layout, and
///   multi-task artifacts (`multitask_manifest.json` /
///   `multitask_model.json` with per-head integrity probes) are
///   introduced.  Version-2 artifacts use the flat pre-encoder weight
///   layout and are rejected with a clean
///   [`ServeError::FormatVersionMismatch`](crate::ServeError) instead of
///   a parse error.
/// * **4** — the MLP kernels adopt the canonical 4-lane reduction order
///   (`zsdb_nn::kernel`): every dot product reduces lane-interleaved with
///   the bias added last, instead of sequentially from the bias.  Weights
///   serialize unchanged, but prediction *bits* shift by a few ulps, so
///   the bit-exact [`IntegrityProbe`] values recorded by version-3
///   artifacts would spuriously fail verification; they are rejected with
///   a clean [`ServeError::FormatVersionMismatch`](crate::ServeError)
///   (re-register the model to refresh its probes).
pub const ARTIFACT_FORMAT_VERSION: u32 = 4;

/// Maximum number of integrity probes stored per artifact.
const MAX_PROBES: usize = 8;

/// One prediction round-trip probe: a featurized plan graph plus the
/// bit-exact prediction the model produced at registration time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegrityProbe {
    /// Stable fingerprint of the probe graph (diagnostics).
    pub graph_fingerprint: u64,
    /// The probe graph itself.
    pub graph: PlanGraph,
    /// `f64::to_bits` of the model's prediction on `graph`.
    pub prediction_bits: u64,
}

/// Provenance and integrity metadata stored next to every model artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactManifest {
    /// Registry format version (see [`ARTIFACT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Model name this artifact is registered under.
    pub name: String,
    /// Artifact version (1-based, monotonically increasing).
    pub version: u32,
    /// Architecture hyper-parameters of the stored model.
    pub model_config: ModelConfig,
    /// Featurizer configuration (cardinality mode + feature mode) the
    /// model was trained with — required to featurize requests the same
    /// way at serving time.
    pub featurizer: FeaturizerConfig,
    /// Number of trainable parameters (sanity metadata).
    pub num_parameters: usize,
    /// Median training Q-error recorded at training time.
    pub final_train_qerror: f64,
    /// Prediction round-trip probes verified on every load.
    pub probes: Vec<IntegrityProbe>,
}

/// One all-heads prediction round-trip probe of a multi-task artifact: a
/// featurized plan graph plus the bit-exact outputs *every* task head
/// produced at registration time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskIntegrityProbe {
    /// Stable fingerprint of the probe graph (diagnostics).
    pub graph_fingerprint: u64,
    /// The probe graph itself.
    pub graph: PlanGraph,
    /// `f64::to_bits` of the cost head's runtime prediction.
    pub cost_bits: u64,
    /// `f64::to_bits` of the root-cardinality head's prediction.
    pub root_rows_bits: u64,
    /// `f64::to_bits` of every per-operator cardinality prediction, in
    /// operator-node order.
    pub operator_rows_bits: Vec<u64>,
}

/// Provenance and integrity metadata of a multi-task artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiTaskArtifactManifest {
    /// Registry format version (see [`ARTIFACT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Model name this artifact is registered under.
    pub name: String,
    /// Artifact version (1-based, monotonically increasing).
    pub version: u32,
    /// Architecture hyper-parameters (including the per-task loss weights
    /// the model was trained with).
    pub model_config: MultiTaskConfig,
    /// Featurizer configuration required at serving time.
    pub featurizer: FeaturizerConfig,
    /// Number of trainable parameters (sanity metadata).
    pub num_parameters: usize,
    /// Names of the task heads this artifact serves, in head order.
    pub task_heads: Vec<String>,
    /// Median training cost q-error recorded at training time.
    pub final_cost_qerror: f64,
    /// All-heads prediction round-trip probes verified on every load.
    pub probes: Vec<MultiTaskIntegrityProbe>,
}

/// A directory-backed registry of versioned model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if necessary) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Register a trained model under `name`, returning the new version.
    ///
    /// `probe_graphs` seed the prediction round-trip integrity check; up
    /// to eight are stored (held-out plans from any database work — the
    /// check only needs *deterministic* inputs, not labelled ones).  At
    /// least one probe graph is required so a load can never silently
    /// skip verification.
    pub fn register(
        &self,
        name: &str,
        model: &TrainedModel,
        probe_graphs: &[PlanGraph],
    ) -> Result<u32, ServeError> {
        assert!(
            !probe_graphs.is_empty(),
            "at least one integrity probe graph is required"
        );
        let probes = probe_graphs
            .iter()
            .take(MAX_PROBES)
            .map(|g| IntegrityProbe {
                graph_fingerprint: graph_fingerprint(g),
                graph: g.clone(),
                prediction_bits: model.predict(g).to_bits(),
            })
            .collect();
        let (version, dir) = self.claim_next_version(name)?;

        let manifest = ArtifactManifest {
            format_version: ARTIFACT_FORMAT_VERSION,
            name: name.to_string(),
            version,
            model_config: *model.model.config(),
            featurizer: model.featurizer,
            num_parameters: model.model.num_parameters(),
            final_train_qerror: model.final_train_qerror,
            probes,
        };
        fs::write(dir.join("manifest.json"), serde_json::to_string(&manifest)?)?;
        fs::write(dir.join("model.json"), model.to_json())?;
        Ok(version)
    }

    /// Register a trained **multi-task** model under `name`, returning the
    /// new version.  Shares the single-task name/version scheme; the
    /// integrity probes record the bit-exact outputs of every head.
    pub fn register_multitask(
        &self,
        name: &str,
        model: &TrainedMultiTaskModel,
        probe_graphs: &[PlanGraph],
    ) -> Result<u32, ServeError> {
        assert!(
            !probe_graphs.is_empty(),
            "at least one integrity probe graph is required"
        );
        let probes = probe_graphs
            .iter()
            .take(MAX_PROBES)
            .map(|g| {
                let p = model.predict(g);
                MultiTaskIntegrityProbe {
                    graph_fingerprint: graph_fingerprint(g),
                    graph: g.clone(),
                    cost_bits: p.runtime_secs.to_bits(),
                    root_rows_bits: p.root_rows.to_bits(),
                    operator_rows_bits: p.operator_rows.iter().map(|r| r.to_bits()).collect(),
                }
            })
            .collect();
        let (version, dir) = self.claim_next_version(name)?;

        let manifest = MultiTaskArtifactManifest {
            format_version: ARTIFACT_FORMAT_VERSION,
            name: name.to_string(),
            version,
            model_config: *model.model.config(),
            featurizer: model.featurizer,
            num_parameters: model.model.num_parameters(),
            task_heads: TaskHead::ALL.iter().map(|h| h.name().to_string()).collect(),
            final_cost_qerror: model.final_train_qerrors.cost,
            probes,
        };
        fs::write(
            dir.join("multitask_manifest.json"),
            serde_json::to_string(&manifest)?,
        )?;
        fs::write(dir.join("multitask_model.json"), model.to_json())?;
        Ok(version)
    }

    /// Claim the next version directory atomically: `create_dir` (unlike
    /// `create_dir_all`) fails on an existing directory, so two concurrent
    /// registrations of the same name can never compute the same version
    /// and silently overwrite each other — the loser just retries with the
    /// next number.
    fn claim_next_version(&self, name: &str) -> Result<(u32, PathBuf), ServeError> {
        fs::create_dir_all(self.root.join(name))?;
        let mut version = self.versions(name)?.last().copied().unwrap_or(0) + 1;
        loop {
            let dir = self.version_dir(name, version);
            match fs::create_dir(&dir) {
                Ok(()) => return Ok((version, dir)),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => version += 1,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// All registered versions of `name`, ascending.  A name with no
    /// artifacts yields an empty list.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, ServeError> {
        let dir = self.root.join(name);
        let mut versions = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(versions),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let file_name = entry?.file_name();
            let file_name = file_name.to_string_lossy();
            if let Some(v) = file_name
                .strip_prefix('v')
                .and_then(|s| s.parse::<u32>().ok())
            {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// All model names with at least one registered version.
    pub fn model_names(&self) -> Result<Vec<String>, ServeError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !self.versions(&name)?.is_empty() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// The newest version of `name`.
    pub fn latest(&self, name: &str) -> Result<u32, ServeError> {
        self.versions(name)?
            .last()
            .copied()
            .ok_or_else(|| ServeError::NotFound {
                name: name.to_string(),
                version: None,
            })
    }

    /// Read an artifact's manifest without loading the model weights.
    pub fn manifest(&self, name: &str, version: u32) -> Result<ArtifactManifest, ServeError> {
        let path = self.version_dir(name, version).join("manifest.json");
        let raw = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                ServeError::NotFound {
                    name: name.to_string(),
                    version: Some(version),
                }
            } else {
                e.into()
            }
        })?;
        let manifest: ArtifactManifest = serde_json::from_str(&raw)?;
        if manifest.format_version != ARTIFACT_FORMAT_VERSION {
            return Err(ServeError::FormatVersionMismatch {
                found: manifest.format_version,
                supported: ARTIFACT_FORMAT_VERSION,
            });
        }
        Ok(manifest)
    }

    /// Load a specific version of a model and run its prediction
    /// round-trip integrity check.
    pub fn load(&self, name: &str, version: u32) -> Result<TrainedModel, ServeError> {
        let manifest = self.manifest(name, version)?;
        let raw = fs::read_to_string(self.version_dir(name, version).join("model.json"))?;
        let model = TrainedModel::from_json(&raw)?;
        for (i, probe) in manifest.probes.iter().enumerate() {
            let bits = model.predict(&probe.graph).to_bits();
            if bits != probe.prediction_bits {
                return Err(ServeError::IntegrityViolation {
                    name: name.to_string(),
                    version,
                    details: format!(
                        "probe {i} (graph {:#018x}): stored prediction bits {:#018x}, \
                         recomputed {bits:#018x}",
                        probe.graph_fingerprint, probe.prediction_bits
                    ),
                });
            }
        }
        Ok(model)
    }

    /// Load the newest version of `name` (with integrity check).
    pub fn load_latest(&self, name: &str) -> Result<TrainedModel, ServeError> {
        let version = self.latest(name)?;
        self.load(name, version)
    }

    /// Read a multi-task artifact's manifest without loading the weights.
    pub fn multitask_manifest(
        &self,
        name: &str,
        version: u32,
    ) -> Result<MultiTaskArtifactManifest, ServeError> {
        let path = self
            .version_dir(name, version)
            .join("multitask_manifest.json");
        let raw = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                ServeError::NotFound {
                    name: name.to_string(),
                    version: Some(version),
                }
            } else {
                e.into()
            }
        })?;
        let manifest: MultiTaskArtifactManifest = serde_json::from_str(&raw)?;
        if manifest.format_version != ARTIFACT_FORMAT_VERSION {
            return Err(ServeError::FormatVersionMismatch {
                found: manifest.format_version,
                supported: ARTIFACT_FORMAT_VERSION,
            });
        }
        Ok(manifest)
    }

    /// Load a specific version of a multi-task model and re-verify the
    /// recorded outputs of **every** head bit for bit.
    pub fn load_multitask(
        &self,
        name: &str,
        version: u32,
    ) -> Result<TrainedMultiTaskModel, ServeError> {
        let manifest = self.multitask_manifest(name, version)?;
        let raw = fs::read_to_string(self.version_dir(name, version).join("multitask_model.json"))?;
        let model = TrainedMultiTaskModel::from_json(&raw)?;
        for (i, probe) in manifest.probes.iter().enumerate() {
            let p = model.predict(&probe.graph);
            let operator_bits: Vec<u64> = p.operator_rows.iter().map(|r| r.to_bits()).collect();
            let mismatch = if p.runtime_secs.to_bits() != probe.cost_bits {
                Some(("cost", probe.cost_bits, p.runtime_secs.to_bits()))
            } else if p.root_rows.to_bits() != probe.root_rows_bits {
                Some((
                    "root_cardinality",
                    probe.root_rows_bits,
                    p.root_rows.to_bits(),
                ))
            } else if operator_bits != probe.operator_rows_bits {
                let j = operator_bits
                    .iter()
                    .zip(&probe.operator_rows_bits)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                Some((
                    "operator_cardinality",
                    probe.operator_rows_bits.get(j).copied().unwrap_or(0),
                    operator_bits.get(j).copied().unwrap_or(0),
                ))
            } else {
                None
            };
            if let Some((head, stored, got)) = mismatch {
                return Err(ServeError::IntegrityViolation {
                    name: name.to_string(),
                    version,
                    details: format!(
                        "probe {i} (graph {:#018x}), head {head}: stored prediction bits \
                         {stored:#018x}, recomputed {got:#018x}",
                        probe.graph_fingerprint
                    ),
                });
            }
        }
        Ok(model)
    }

    /// Load the newest multi-task version of `name` (with the all-heads
    /// integrity check).
    pub fn load_latest_multitask(&self, name: &str) -> Result<TrainedMultiTaskModel, ServeError> {
        let version = self.latest(name)?;
        self.load_multitask(name, version)
    }

    // ── Version lifecycle ────────────────────────────────────────────
    //
    // A version moves through three states:
    //
    // * **registered** — the artifact exists on disk and passes its
    //   integrity probes, but nothing serves it;
    // * **promoted (active)** — the version was appended to the model's
    //   promotion history (`promotions.json`) and is what
    //   `active_version` resolves to; the adaptation loop promotes every
    //   fine-tuned version it hot-swaps in;
    // * **rolled back / superseded** — a later promotion (supersede) or
    //   a `rollback` (pop) ended the version's active tenure.  The
    //   artifact itself is never deleted, so any historical version can
    //   be re-promoted or inspected.

    /// Promote a registered version to *active*: append it to the
    /// model's promotion history.  Promoting the already-active version
    /// is a no-op.  Fails with [`ServeError::NotFound`] if the version
    /// was never registered.
    pub fn promote(&self, name: &str, version: u32) -> Result<(), ServeError> {
        let dir = self.version_dir(name, version);
        if !dir.join("manifest.json").exists() && !dir.join("multitask_manifest.json").exists() {
            return Err(ServeError::NotFound {
                name: name.to_string(),
                version: Some(version),
            });
        }
        let mut history = self.promotion_history(name)?;
        if history.last() == Some(&version) {
            return Ok(());
        }
        history.push(version);
        self.write_promotions(name, &history)
    }

    /// The full promotion history of `name`, oldest first (empty when
    /// nothing was ever promoted).
    pub fn promotion_history(&self, name: &str) -> Result<Vec<u32>, ServeError> {
        let path = self.root.join(name).join("promotions.json");
        match fs::read_to_string(&path) {
            Ok(raw) => Ok(serde_json::from_str(&raw)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// The currently promoted (active) version, or `None` when nothing
    /// was ever promoted.
    pub fn promoted(&self, name: &str) -> Result<Option<u32>, ServeError> {
        Ok(self.promotion_history(name)?.last().copied())
    }

    /// Roll the active version back to its predecessor in the promotion
    /// history, returning the version that is now active.  Fails with
    /// [`ServeError::RollbackUnavailable`] when the history holds fewer
    /// than two entries (there is nothing to fall back to).
    pub fn rollback(&self, name: &str) -> Result<u32, ServeError> {
        let mut history = self.promotion_history(name)?;
        if history.len() < 2 {
            return Err(ServeError::RollbackUnavailable {
                name: name.to_string(),
            });
        }
        history.pop();
        let active = *history.last().expect("checked non-empty");
        self.write_promotions(name, &history)?;
        Ok(active)
    }

    /// The version a server should serve: the promoted version when one
    /// exists, otherwise the newest registered version.
    pub fn active_version(&self, name: &str) -> Result<u32, ServeError> {
        match self.promoted(name)? {
            Some(v) => Ok(v),
            None => self.latest(name),
        }
    }

    /// Write the promotion history atomically *and durably*: a uniquely
    /// named temp file (two concurrent writers never share one), fsync'd
    /// before the rename, then the parent directory fsync'd after it —
    /// without the directory sync a crash shortly after the rename can
    /// still resurrect the old history (the rename itself lives in the
    /// directory's metadata).  A crash mid-write leaves at worst a stale
    /// `promotions.json.<pid>.<n>.tmp` behind, never a torn
    /// `promotions.json`.
    fn write_promotions(&self, name: &str, history: &[u32]) -> Result<(), ServeError> {
        use std::io::Write as _;
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = self.root.join(name);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(
            "promotions.json.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let payload = serde_json::to_string(&history.to_vec())?;
        let result = (|| -> Result<(), ServeError> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(payload.as_bytes())?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, dir.join("promotions.json"))?;
            // Persist the rename itself. Directories cannot be fsync'd on
            // every platform (e.g. Windows); treat that as best-effort.
            if let Ok(dir_handle) = fs::File::open(&dir) {
                let _ = dir_handle.sync_all();
            }
            Ok(())
        })();
        if result.is_err() {
            // Never leave a half-written temp file to be confused for
            // data; ignore cleanup failure (the unique name keeps it
            // inert either way).
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    fn version_dir(&self, name: &str, version: u32) -> PathBuf {
        self.root.join(name).join(format!("v{version:04}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use zsdb_catalog::presets;
    use zsdb_core::features::{featurize_execution, FeaturizerConfig};
    use zsdb_core::model::ModelConfig;
    use zsdb_core::train::{Trainer, TrainingConfig};
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn temp_registry() -> ModelRegistry {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "zsdb_registry_test_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        ModelRegistry::open(dir).unwrap()
    }

    fn tiny_trained_model_and_graphs() -> (TrainedModel, Vec<PlanGraph>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 20, 1);
        let graphs: Vec<PlanGraph> = runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
            .collect();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 3,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        (trained, graphs)
    }

    #[test]
    fn register_load_roundtrip_preserves_predictions() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let version = registry.register("cost", &model, &graphs[..5]).unwrap();
        assert_eq!(version, 1);
        let loaded = registry.load("cost", version).unwrap();
        for g in &graphs {
            assert_eq!(model.predict(g).to_bits(), loaded.predict(g).to_bits());
        }
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn versions_increase_monotonically() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        assert_eq!(registry.versions("cost").unwrap(), Vec::<u32>::new());
        for expected in 1..=3 {
            let v = registry.register("cost", &model, &graphs[..2]).unwrap();
            assert_eq!(v, expected);
        }
        assert_eq!(registry.versions("cost").unwrap(), vec![1, 2, 3]);
        assert_eq!(registry.latest("cost").unwrap(), 3);
        assert_eq!(registry.model_names().unwrap(), vec!["cost".to_string()]);
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn concurrent_registrations_never_overwrite_each_other() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let model = std::sync::Arc::new(model);
        let probe = std::sync::Arc::new(vec![graphs[0].clone()]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = registry.clone();
            let model = std::sync::Arc::clone(&model);
            let probe = std::sync::Arc::clone(&probe);
            handles.push(std::thread::spawn(move || {
                registry.register("cost", &model, &probe).unwrap()
            }));
        }
        let mut versions: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        versions.sort_unstable();
        // Every registration claimed a distinct version and all artifacts
        // load cleanly.
        assert_eq!(versions, vec![1, 2, 3, 4]);
        for v in versions {
            registry.load("cost", v).unwrap();
        }
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn promote_and_rollback_walk_the_lifecycle() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let v1 = registry.register("cost", &model, &graphs[..2]).unwrap();
        let v2 = registry.register("cost", &model, &graphs[..2]).unwrap();
        let v3 = registry.register("cost", &model, &graphs[..2]).unwrap();

        // Nothing promoted yet: active falls back to latest.
        assert_eq!(registry.promoted("cost").unwrap(), None);
        assert_eq!(registry.active_version("cost").unwrap(), v3);

        registry.promote("cost", v1).unwrap();
        assert_eq!(registry.promoted("cost").unwrap(), Some(v1));
        assert_eq!(registry.active_version("cost").unwrap(), v1);

        // Promoting the active version again is a no-op.
        registry.promote("cost", v1).unwrap();
        assert_eq!(registry.promotion_history("cost").unwrap(), vec![v1]);

        registry.promote("cost", v2).unwrap();
        registry.promote("cost", v3).unwrap();
        assert_eq!(
            registry.promotion_history("cost").unwrap(),
            vec![v1, v2, v3]
        );

        // Rollback pops back through the history.
        assert_eq!(registry.rollback("cost").unwrap(), v2);
        assert_eq!(registry.active_version("cost").unwrap(), v2);
        assert_eq!(registry.rollback("cost").unwrap(), v1);
        assert!(matches!(
            registry.rollback("cost"),
            Err(ServeError::RollbackUnavailable { .. })
        ));

        // Promoting an unregistered version is refused.
        assert!(matches!(
            registry.promote("cost", 99),
            Err(ServeError::NotFound { .. })
        ));
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn partially_written_tmp_never_shadows_the_promotion_history() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let v1 = registry.register("cost", &model, &graphs[..2]).unwrap();
        let v2 = registry.register("cost", &model, &graphs[..2]).unwrap();
        registry.promote("cost", v1).unwrap();

        // Simulate a crash mid-write: torn temp files in every naming
        // scheme a crashed writer could have left behind.
        let dir = registry.root().join("cost");
        fs::write(dir.join("promotions.json.tmp"), b"[1, 2, 9").unwrap();
        fs::write(
            dir.join(format!("promotions.json.{}.7.tmp", std::process::id())),
            b"{torn",
        )
        .unwrap();

        // The valid history is untouched by the debris...
        assert_eq!(registry.promotion_history("cost").unwrap(), vec![v1]);
        assert_eq!(registry.promoted("cost").unwrap(), Some(v1));

        // ...and further promotions neither read nor trip over it.
        registry.promote("cost", v2).unwrap();
        assert_eq!(registry.promotion_history("cost").unwrap(), vec![v1, v2]);
        let raw = fs::read_to_string(dir.join("promotions.json")).unwrap();
        let parsed: Vec<u32> = serde_json::from_str(&raw).unwrap();
        assert_eq!(parsed, vec![v1, v2], "promotions.json is whole JSON");

        // A fresh write leaves no *new* temp debris behind (the planted
        // files are someone else's crash, not ours).
        let tmp_files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert_eq!(tmp_files.len(), 2, "only the planted debris: {tmp_files:?}");
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn missing_models_are_not_found() {
        let registry = temp_registry();
        assert!(matches!(
            registry.latest("nope"),
            Err(ServeError::NotFound { .. })
        ));
        assert!(matches!(
            registry.manifest("nope", 1),
            Err(ServeError::NotFound { .. })
        ));
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn manifest_records_provenance() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let v = registry.register("cost", &model, &graphs[..3]).unwrap();
        let manifest = registry.manifest("cost", v).unwrap();
        assert_eq!(manifest.format_version, ARTIFACT_FORMAT_VERSION);
        assert_eq!(manifest.name, "cost");
        assert_eq!(manifest.featurizer, model.featurizer);
        assert_eq!(manifest.model_config, *model.model.config());
        assert_eq!(manifest.num_parameters, model.model.num_parameters());
        assert_eq!(manifest.probes.len(), 3);
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn corrupted_weights_fail_the_integrity_check() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let v = registry.register("cost", &model, &graphs[..3]).unwrap();

        // Corrupt the stored weights by swapping a digit in every float
        // containing "0.0", keeping the JSON valid.  (A single targeted
        // flip could land on a weight that only multiplies a one-hot slot
        // the probe graphs never activate; flipping all of them guarantees
        // live parameters change.)
        let path = registry
            .root()
            .join("cost")
            .join("v0001")
            .join("model.json");
        let raw = fs::read_to_string(&path).unwrap();
        let corrupted = raw.replace("0.0", "0.5");
        assert_ne!(raw, corrupted, "corruption should change the artifact");
        fs::write(&path, corrupted).unwrap();

        match registry.load("cost", v) {
            Err(ServeError::IntegrityViolation { details, .. }) => {
                assert!(details.contains("probe"));
            }
            other => panic!("expected integrity violation, got {other:?}"),
        }
        let _ = fs::remove_dir_all(registry.root());
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let registry = temp_registry();
        let (model, graphs) = tiny_trained_model_and_graphs();
        let v = registry.register("cost", &model, &graphs[..1]).unwrap();
        let path = registry
            .root()
            .join("cost")
            .join("v0001")
            .join("manifest.json");
        let raw = fs::read_to_string(&path).unwrap();
        let current = format!("\"format_version\":{ARTIFACT_FORMAT_VERSION}");
        assert!(raw.contains(&current), "manifest records current version");
        fs::write(&path, raw.replacen(&current, "\"format_version\":99", 1)).unwrap();
        assert!(matches!(
            registry.load("cost", v),
            Err(ServeError::FormatVersionMismatch { found: 99, .. })
        ));
        let _ = fs::remove_dir_all(registry.root());
    }
}
