//! Transferable graph encoding of executed query plans (paper Figure 2).
//!
//! A physical plan is turned into a DAG of typed nodes:
//!
//! * **plan-operator** nodes — one per physical operator, featurized by the
//!   operator kind (one-hot), its cardinality (exact or estimated) and its
//!   output tuple width;
//! * **table** nodes — tuple count, page count, row width;
//! * **column** nodes — data type (one-hot), value width, distinct count,
//!   null fraction;
//! * **predicate** nodes — comparison operator (one-hot) and the *data
//!   type* of the literal (never its value — selectivity information
//!   reaches the model only through cardinalities, the paper's
//!   "separation of concerns");
//! * **aggregation** nodes — aggregate function (one-hot).
//!
//! All features are database-independent, so a model trained on one set of
//! databases can be applied to a completely different one.  For the
//! ablation study, [`FeatureMode::HashedOneHot`] replaces the table and
//! column features by hashed identity one-hots — the *non-transferable*
//! encoding the paper criticises in workload-driven models.

use crate::arena::GraphArena;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use zsdb_catalog::{ColumnRef, SchemaCatalog, TableId};
use zsdb_engine::{ExecutedNode, PhysOperator, PhysOperatorKind, PlanNode, QueryExecution};
use zsdb_query::{Aggregate, CmpOp, Predicate};

/// Which cardinalities annotate the plan-operator nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CardinalityMode {
    /// True cardinalities observed by the executor (upper-bound variant,
    /// "Zero-Shot (Exact Cardinalities)").
    Exact,
    /// The optimizer's estimates ("Zero-Shot (Est. Cardinalities)").
    Estimated,
}

/// Which featurization is used for tables and columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Database-independent statistics (the paper's proposal).
    Transferable,
    /// Hashed identity one-hots of table/column names — non-transferable;
    /// used only by the featurization ablation.
    HashedOneHot,
}

/// Number of slots used by the hashed one-hot ablation encoding.
const HASH_SLOTS: usize = 16;

/// Node types of the plan graph, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Physical plan operator.
    PlanOperator,
    /// Base table.
    Table,
    /// Column.
    Column,
    /// Filter predicate.
    Predicate,
    /// Aggregation expression.
    Aggregation,
}

impl NodeKind {
    /// All node kinds.
    pub const ALL: [NodeKind; 5] = [
        NodeKind::PlanOperator,
        NodeKind::Table,
        NodeKind::Column,
        NodeKind::Predicate,
        NodeKind::Aggregation,
    ];

    /// Stable index of the node kind.
    pub fn index(self) -> usize {
        match self {
            NodeKind::PlanOperator => 0,
            NodeKind::Table => 1,
            NodeKind::Column => 2,
            NodeKind::Predicate => 3,
            NodeKind::Aggregation => 4,
        }
    }

    /// Dimension of the feature vector of this node kind.
    pub fn feature_dim(self) -> usize {
        match self {
            NodeKind::PlanOperator => PhysOperatorKind::ALL.len() + 3,
            NodeKind::Table => 3 + HASH_SLOTS,
            NodeKind::Column => 5 + 3 + HASH_SLOTS,
            NodeKind::Predicate => 6 + 5,
            NodeKind::Aggregation => 5,
        }
    }
}

/// One node of the plan graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Node type.
    pub kind: NodeKind,
    /// Feature vector of length `kind.feature_dim()`.
    pub features: Vec<f64>,
    /// Indices of child nodes (always smaller than the node's own index, so
    /// index order is a topological order).
    pub children: Vec<usize>,
}

/// A featurized query plan: a DAG with a single root (the topmost plan
/// operator) whose nodes appear in topological (children-first) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanGraph {
    /// Nodes in topological order.
    pub nodes: Vec<GraphNode>,
    /// Index of the root plan-operator node (always the last node).
    pub root: usize,
    /// The runtime label in seconds, if known (training data).
    pub runtime_secs: Option<f64>,
}

impl PlanGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes of the given kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }
}

/// Configuration of the featurizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeaturizerConfig {
    /// Exact or estimated cardinalities on plan operators.
    pub cardinality_mode: CardinalityMode,
    /// Transferable or hashed-one-hot table/column features.
    pub feature_mode: FeatureMode,
}

impl Default for FeaturizerConfig {
    fn default() -> Self {
        FeaturizerConfig {
            cardinality_mode: CardinalityMode::Exact,
            feature_mode: FeatureMode::Transferable,
        }
    }
}

impl FeaturizerConfig {
    /// Exact-cardinality transferable featurization.
    pub fn exact() -> Self {
        FeaturizerConfig::default()
    }

    /// Estimated-cardinality transferable featurization.
    pub fn estimated() -> Self {
        FeaturizerConfig {
            cardinality_mode: CardinalityMode::Estimated,
            ..FeaturizerConfig::default()
        }
    }
}

/// Build the plan graph of an executed query (training / evaluation data).
///
/// Convenience wrapper over [`featurize_execution_into`] with a
/// throwaway arena; hot paths should hold a [`GraphArena`] and a
/// reusable graph and call the `_into` variant directly.
pub fn featurize_execution(
    catalog: &SchemaCatalog,
    execution: &QueryExecution,
    config: FeaturizerConfig,
) -> PlanGraph {
    let mut arena = GraphArena::new();
    let mut graph = PlanGraph {
        nodes: Vec::new(),
        root: 0,
        runtime_secs: None,
    };
    featurize_execution_into(catalog, execution, config, &mut arena, &mut graph);
    graph
}

/// Rebuild `graph` in place as the plan graph of an executed query,
/// recycling its previous nodes through `arena`.
///
/// Produces a graph equal to [`featurize_execution`]'s (bit-identical
/// features); once the arena's pools have grown to the workload's
/// high-water mark the call performs **zero heap allocations**.
pub fn featurize_execution_into(
    catalog: &SchemaCatalog,
    execution: &QueryExecution,
    config: FeaturizerConfig,
    arena: &mut GraphArena,
    graph: &mut PlanGraph,
) {
    arena.reclaim_nodes(graph);
    let mut builder = GraphBuilder {
        catalog,
        config,
        arena,
        nodes: &mut graph.nodes,
    };
    graph.root = builder.add_plan_node(&execution.plan, Some(&execution.executed));
    graph.runtime_secs = Some(execution.runtime_secs);
}

/// Build the plan graph of a *planned but not executed* query (inference,
/// e.g. what-if scenarios).  Only estimated cardinalities are available, so
/// `config.cardinality_mode` is forced to [`CardinalityMode::Estimated`].
///
/// Convenience wrapper over [`featurize_plan_into`] with a throwaway
/// arena (see there for the allocation-free variant).
pub fn featurize_plan(
    catalog: &SchemaCatalog,
    plan: &PlanNode,
    config: FeaturizerConfig,
) -> PlanGraph {
    let mut arena = GraphArena::new();
    let mut graph = PlanGraph {
        nodes: Vec::new(),
        root: 0,
        runtime_secs: None,
    };
    featurize_plan_into(catalog, plan, config, &mut arena, &mut graph);
    graph
}

/// Rebuild `graph` in place as the plan graph of a planned query — the
/// serving hot path.  `config.cardinality_mode` is forced to
/// [`CardinalityMode::Estimated`] exactly as in [`featurize_plan`].
///
/// The previous contents of `graph` are recycled through `arena` (nodes
/// cleared into the spare pool, buffer capacity retained), so repeated
/// featurization over a warm arena performs **zero heap allocations** —
/// the property the allocation-regression test asserts.
pub fn featurize_plan_into(
    catalog: &SchemaCatalog,
    plan: &PlanNode,
    config: FeaturizerConfig,
    arena: &mut GraphArena,
    graph: &mut PlanGraph,
) {
    let config = FeaturizerConfig {
        cardinality_mode: CardinalityMode::Estimated,
        ..config
    };
    arena.reclaim_nodes(graph);
    let mut builder = GraphBuilder {
        catalog,
        config,
        arena,
        nodes: &mut graph.nodes,
    };
    graph.root = builder.add_plan_node(plan, None);
    graph.runtime_secs = None;
}

struct GraphBuilder<'a> {
    catalog: &'a SchemaCatalog,
    config: FeaturizerConfig,
    arena: &'a mut GraphArena,
    nodes: &'a mut Vec<GraphNode>,
}

impl<'a> GraphBuilder<'a> {
    fn push(&mut self, node: GraphNode) -> usize {
        debug_assert_eq!(node.features.len(), node.kind.feature_dim());
        let idx = self.nodes.len();
        debug_assert!(node.children.iter().all(|c| *c < idx));
        self.nodes.push(node);
        idx
    }

    /// Recursively add a plan operator with its child operators and its
    /// attached table / column / predicate / aggregation nodes.
    ///
    /// The node is taken from the arena *before* recursing so its pooled
    /// `children` buffer collects the child indices directly; features are
    /// written in place into the pooled `features` buffer.
    fn add_plan_node(&mut self, plan: &PlanNode, executed: Option<&ExecutedNode>) -> usize {
        let mut node = self.arena.take_node(NodeKind::PlanOperator);
        // Children first so that indices are a topological order.
        for (i, child) in plan.children.iter().enumerate() {
            let idx = self.add_plan_node(child, executed.map(|e| &e.children[i]));
            node.children.push(idx);
        }

        match &plan.op {
            PhysOperator::SeqScan { table, predicates } => {
                let t = self.table_node(*table);
                node.children.push(t);
                for p in predicates {
                    let pn = self.predicate_node(p);
                    node.children.push(pn);
                }
            }
            PhysOperator::IndexScan {
                table,
                index_column,
                residual,
                ..
            } => {
                let t = self.table_node(*table);
                node.children.push(t);
                let c = self.column_node(*index_column);
                node.children.push(c);
                for p in residual {
                    let pn = self.predicate_node(p);
                    node.children.push(pn);
                }
            }
            PhysOperator::HashJoin {
                build_key,
                probe_key,
            } => {
                let b = self.column_node(*build_key);
                node.children.push(b);
                let p = self.column_node(*probe_key);
                node.children.push(p);
            }
            PhysOperator::NestedLoopJoin {
                outer_key,
                inner_key,
            } => {
                let o = self.column_node(*outer_key);
                node.children.push(o);
                let i = self.column_node(*inner_key);
                node.children.push(i);
            }
            PhysOperator::Aggregate { aggregates } => {
                for agg in aggregates {
                    let a = self.aggregation_node(agg);
                    node.children.push(a);
                }
            }
        }

        let cardinality = match (self.config.cardinality_mode, executed) {
            (CardinalityMode::Exact, Some(e)) => e.actual_cardinality as f64,
            _ => plan.est_cardinality,
        };
        push_one_hot(
            &mut node.features,
            plan.op.kind().index(),
            PhysOperatorKind::ALL.len(),
        );
        node.features.push(log1p(cardinality));
        node.features.push(log1p(plan.output_width));
        node.features
            .push(log1p(plan.est_cardinality * plan.output_width));
        self.push(node)
    }

    fn table_node(&mut self, table: TableId) -> usize {
        if let Some(&idx) = self.arena.table_nodes.get(&table) {
            return idx;
        }
        let mut node = self.arena.take_node(NodeKind::Table);
        let meta = self.catalog.table(table);
        match self.config.feature_mode {
            FeatureMode::Transferable => {
                node.features.push(log1p(meta.num_tuples as f64));
                node.features.push(log1p(meta.num_pages() as f64));
                node.features.push(log1p(meta.row_width_bytes() as f64));
                push_zeros(&mut node.features, HASH_SLOTS);
            }
            FeatureMode::HashedOneHot => {
                // Non-transferable ablation: identity of the table instead of
                // its statistics.
                push_zeros(&mut node.features, 3);
                push_hashed_one_hot(&mut node.features, &meta.name);
            }
        }
        let idx = self.push(node);
        self.arena.table_nodes.insert(table, idx);
        idx
    }

    fn column_node(&mut self, column: ColumnRef) -> usize {
        if let Some(&idx) = self.arena.column_nodes.get(&column) {
            return idx;
        }
        let mut node = self.arena.take_node(NodeKind::Column);
        let meta = self.catalog.column(column);
        push_one_hot(&mut node.features, meta.data_type.index(), 5);
        match self.config.feature_mode {
            FeatureMode::Transferable => {
                node.features.push(meta.width_bytes() as f64 / 8.0);
                node.features.push(log1p(meta.stats.distinct_count as f64));
                node.features.push(meta.stats.null_fraction);
                push_zeros(&mut node.features, HASH_SLOTS);
            }
            FeatureMode::HashedOneHot => {
                push_zeros(&mut node.features, 3);
                let table_name = &self.catalog.table(column.table).name;
                push_hashed_one_hot(&mut node.features, &format!("{table_name}.{}", meta.name));
            }
        }
        let idx = self.push(node);
        self.arena.column_nodes.insert(column, idx);
        idx
    }

    fn predicate_node(&mut self, predicate: &Predicate) -> usize {
        let column = self.column_node(predicate.column);
        let mut node = self.arena.take_node(NodeKind::Predicate);
        node.children.push(column);
        push_one_hot(&mut node.features, predicate.op.index(), CmpOp::ALL.len());
        let literal_type = predicate.value.data_type().map(|t| t.index()).unwrap_or(0);
        push_one_hot(&mut node.features, literal_type, 5);
        self.push(node)
    }

    fn aggregation_node(&mut self, aggregate: &Aggregate) -> usize {
        let column = aggregate.column.map(|c| self.column_node(c));
        let mut node = self.arena.take_node(NodeKind::Aggregation);
        if let Some(c) = column {
            node.children.push(c);
        }
        push_one_hot(&mut node.features, aggregate.func.index(), 5);
        self.push(node)
    }
}

/// Append a one-hot encoding of `index` (length `len`) in place.
fn push_one_hot(out: &mut Vec<f64>, index: usize, len: usize) {
    let base = out.len();
    push_zeros(out, len);
    if index < len {
        out[base + index] = 1.0;
    }
}

/// Append `n` zeros in place.
fn push_zeros(out: &mut Vec<f64>, n: usize) {
    out.resize(out.len() + n, 0.0);
}

/// Append the hashed-identity one-hot of `name` in place (ablation mode).
fn push_hashed_one_hot(out: &mut Vec<f64>, name: &str) {
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    push_one_hot(
        out,
        (hasher.finish() % HASH_SLOTS as u64) as usize,
        HASH_SLOTS,
    );
}

fn log1p(x: f64) -> f64 {
    (x.max(0.0) + 1.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn sample_executions() -> (Database, Vec<QueryExecution>) {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 10, 1);
        let executions = runner.run_workload(&queries, 0);
        (db, executions)
    }

    #[test]
    fn graph_is_topologically_ordered_with_plan_root() {
        let (db, executions) = sample_executions();
        for e in &executions {
            let g = featurize_execution(db.catalog(), e, FeaturizerConfig::exact());
            assert_eq!(g.root, g.len() - 1);
            assert_eq!(g.nodes[g.root].kind, NodeKind::PlanOperator);
            for (i, node) in g.nodes.iter().enumerate() {
                assert_eq!(node.features.len(), node.kind.feature_dim());
                for &c in &node.children {
                    assert!(c < i, "child {c} not before parent {i}");
                }
            }
            assert_eq!(g.runtime_secs, Some(e.runtime_secs));
        }
    }

    #[test]
    fn graph_contains_all_node_types() {
        let (db, executions) = sample_executions();
        let with_predicates = executions
            .iter()
            .find(|e| !e.query.predicates.is_empty())
            .expect("some query has predicates");
        let g = featurize_execution(db.catalog(), with_predicates, FeaturizerConfig::exact());
        assert!(g.count_kind(NodeKind::PlanOperator) >= 2);
        assert!(g.count_kind(NodeKind::Table) == with_predicates.query.num_tables());
        assert!(g.count_kind(NodeKind::Predicate) == with_predicates.query.predicates.len());
        assert!(g.count_kind(NodeKind::Aggregation) == with_predicates.query.aggregates.len());
        assert!(g.count_kind(NodeKind::Column) >= 1);
    }

    #[test]
    fn exact_and_estimated_cardinalities_differ() {
        let (db, executions) = sample_executions();
        // Find a query where the estimate is off (almost always true for
        // multi-predicate queries).
        let mut found_difference = false;
        for e in &executions {
            let exact = featurize_execution(db.catalog(), e, FeaturizerConfig::exact());
            let est = featurize_execution(db.catalog(), e, FeaturizerConfig::estimated());
            assert_eq!(exact.len(), est.len());
            if exact
                .nodes
                .iter()
                .zip(&est.nodes)
                .any(|(a, b)| a.features != b.features)
            {
                found_difference = true;
            }
        }
        assert!(found_difference);
    }

    #[test]
    fn shared_columns_are_deduplicated() {
        let (db, executions) = sample_executions();
        for e in &executions {
            let g = featurize_execution(db.catalog(), e, FeaturizerConfig::exact());
            // Each distinct referenced column appears at most once.
            let num_column_nodes = g.count_kind(NodeKind::Column);
            let mut referenced = e.query.referenced_columns();
            referenced.sort();
            referenced.dedup();
            assert!(num_column_nodes <= referenced.len() + e.query.num_tables());
        }
    }

    #[test]
    fn transferable_features_are_identical_across_databases_for_same_structure() {
        // Featurize the same logical structure on two different databases:
        // the *shape* of features must be identical (same dims), and table
        // features must differ only through statistics, not identity.
        let (db, executions) = sample_executions();
        let g = featurize_execution(db.catalog(), &executions[0], FeaturizerConfig::exact());
        let other_db = Database::generate(presets::ssb_like(0.02), 1);
        let runner = QueryRunner::with_defaults(&other_db);
        let queries = WorkloadGenerator::with_defaults().generate(other_db.catalog(), 1, 1);
        let other = featurize_execution(
            other_db.catalog(),
            &runner.run(&queries[0], 0),
            FeaturizerConfig::exact(),
        );
        for node in g.nodes.iter().chain(other.nodes.iter()) {
            assert_eq!(node.features.len(), node.kind.feature_dim());
        }
    }

    #[test]
    fn hashed_one_hot_mode_hides_statistics() {
        let (db, executions) = sample_executions();
        let config = FeaturizerConfig {
            feature_mode: FeatureMode::HashedOneHot,
            ..FeaturizerConfig::exact()
        };
        let g = featurize_execution(db.catalog(), &executions[0], config);
        for node in g.nodes.iter().filter(|n| n.kind == NodeKind::Table) {
            // Statistics slots are zeroed in the ablation mode.
            assert_eq!(&node.features[0..3], &[0.0, 0.0, 0.0]);
            assert_eq!(node.features[3..].iter().sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn arena_featurization_is_identical_to_allocating_featurization() {
        // One arena + one reusable graph across many plans and both
        // feature modes: every rebuild must equal the allocating path
        // (same nodes, same feature bits, same topology).
        let (db, executions) = sample_executions();
        let mut arena = GraphArena::new();
        let mut graph = arena.take_graph();
        for config in [
            FeaturizerConfig::exact(),
            FeaturizerConfig::estimated(),
            FeaturizerConfig {
                feature_mode: FeatureMode::HashedOneHot,
                ..FeaturizerConfig::exact()
            },
        ] {
            for e in &executions {
                featurize_execution_into(db.catalog(), e, config, &mut arena, &mut graph);
                assert_eq!(graph, featurize_execution(db.catalog(), e, config));
                featurize_plan_into(db.catalog(), &e.plan, config, &mut arena, &mut graph);
                assert_eq!(graph, featurize_plan(db.catalog(), &e.plan, config));
            }
        }
        arena.recycle(graph);
        assert!(arena.pooled_nodes() > 0);
    }

    #[test]
    fn featurize_plan_without_execution_uses_estimates() {
        let (db, executions) = sample_executions();
        let g = featurize_plan(db.catalog(), &executions[0].plan, FeaturizerConfig::exact());
        assert!(g.runtime_secs.is_none());
        let est = featurize_execution(db.catalog(), &executions[0], FeaturizerConfig::estimated());
        // Plan-only featurization equals the estimated-cardinality variant.
        assert_eq!(g.nodes, est.nodes);
    }
}
