//! Evaluation of cost models on benchmark workloads.

use crate::features::{featurize_execution, PlanGraph};
use crate::train::TrainedModel;
use serde::{Deserialize, Serialize};
use zsdb_engine::QueryExecution;
use zsdb_nn::{percentile, q_error, QErrorSummary};
use zsdb_storage::Database;

/// Q-error percentiles of a prediction stream: the p50/p95/max triple the
/// paper reports, computed from raw `(predicted, actual)` pairs.
///
/// Experiment binaries should use these helpers instead of re-deriving
/// medians by hand so every table in the repo slices the distribution the
/// same way.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QErrorPercentiles {
    /// Median (50th percentile) Q-error.
    pub p50: f64,
    /// 95th-percentile Q-error.
    pub p95: f64,
    /// Maximum observed Q-error.
    pub max: f64,
}

/// Q-error percentiles of raw q-error samples.
pub fn qerror_percentiles(qerrors: &[f64]) -> QErrorPercentiles {
    QErrorPercentiles {
        p50: percentile(qerrors, 50.0),
        p95: percentile(qerrors, 95.0),
        max: qerrors.iter().copied().fold(f64::NAN, f64::max),
    }
}

/// Q-error percentiles of `(predicted, actual)` pairs.
pub fn qerror_percentiles_of(pairs: &[(f64, f64)]) -> QErrorPercentiles {
    let qs: Vec<f64> = pairs.iter().map(|(p, a)| q_error(*p, *a)).collect();
    qerror_percentiles(&qs)
}

/// Median Q-error of `(predicted, actual)` pairs — the single number most
/// experiment tables report per cell.
pub fn median_qerror_of(pairs: &[(f64, f64)]) -> f64 {
    qerror_percentiles_of(pairs).p50
}

/// Q-error report of one model on one workload, in the format of the
/// paper's Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Name of the evaluated workload (e.g. `"scale"`, `"job-light"`).
    pub workload: String,
    /// Q-error summary (median / 95th / max).
    pub qerrors: QErrorSummary,
}

impl std::fmt::Display for EvaluationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<12} {}", self.workload, self.qerrors)
    }
}

/// Predict the runtime of a single executed query with a trained model,
/// using the model's own featurizer configuration against the target
/// database's catalog.
pub fn predict_runtime(model: &TrainedModel, db: &Database, execution: &QueryExecution) -> f64 {
    let graph = featurize_execution(db.catalog(), execution, model.featurizer);
    model.predict(&graph)
}

/// Evaluate a trained model on a workload's executions over an (unseen)
/// database and summarise the Q-errors.
///
/// Predictions run through the batched forward pass (bit-identical to
/// [`predict_runtime`] per execution, one batched MLP call per
/// level/kind group instead of per node).
pub fn evaluate(
    model: &TrainedModel,
    db: &Database,
    workload_name: &str,
    executions: &[QueryExecution],
) -> EvaluationReport {
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(executions.len());
    // Featurize and predict chunk by chunk so peak memory stays flat for
    // arbitrarily large evaluation workloads.
    for chunk in executions.chunks(EVAL_CHUNK) {
        let graphs: Vec<PlanGraph> = chunk
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, model.featurizer))
            .collect();
        let refs: Vec<&PlanGraph> = graphs.iter().collect();
        pairs.extend(
            batched_predictions(&model.model, &refs)
                .into_iter()
                .zip(chunk)
                .map(|(p, e)| (p, e.runtime_secs)),
        );
    }
    EvaluationReport {
        workload: workload_name.to_string(),
        qerrors: QErrorSummary::from_predictions(&pairs),
    }
}

/// Mini-batch size of the chunked evaluation sweeps (bounds the size of
/// the batched forward's intermediate state).
const EVAL_CHUNK: usize = 256;

/// Predict a slice of graphs in bounded-size batches (keeps peak memory
/// flat for arbitrarily large evaluation sets).  Shared by every batched
/// evaluation path in the crate (see also [`crate::train::median_q_error`]).
pub(crate) fn batched_predictions(
    model: &crate::model::ZeroShotCostModel,
    graphs: &[&PlanGraph],
) -> Vec<f64> {
    let mut predictions = Vec::with_capacity(graphs.len());
    for chunk in graphs.chunks(EVAL_CHUNK) {
        predictions.extend(model.predict_batch(chunk));
    }
    predictions
}

/// Evaluate predictions that were produced by any means (used by the
/// baselines and the what-if pipeline, which do not go through
/// [`predict_runtime`]).
pub fn evaluate_predictions(workload_name: &str, pairs: &[(f64, f64)]) -> EvaluationReport {
    EvaluationReport {
        workload: workload_name.to_string(),
        qerrors: QErrorSummary::from_predictions(pairs),
    }
}

/// Evaluate a model on already-featurized graphs (graphs must carry
/// labels).
pub fn evaluate_graphs(
    model: &TrainedModel,
    workload_name: &str,
    graphs: &[PlanGraph],
) -> EvaluationReport {
    let labelled: Vec<&PlanGraph> = graphs.iter().filter(|g| g.runtime_secs.is_some()).collect();
    let pairs: Vec<(f64, f64)> = batched_predictions(&model.model, &labelled)
        .into_iter()
        .zip(&labelled)
        .map(|(p, g)| (p, g.runtime_secs.expect("labelled")))
        .collect();
    EvaluationReport {
        workload: workload_name.to_string(),
        qerrors: QErrorSummary::from_predictions(&pairs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::collect_for_database;
    use crate::features::FeaturizerConfig;
    use crate::model::ModelConfig;
    use crate::train::{Trainer, TrainingConfig};
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadSpec;

    #[test]
    fn qerror_percentile_helpers_match_summary() {
        let pairs = [(1.0, 1.0), (2.0, 1.0), (1.0, 4.0), (8.0, 1.0)];
        let p = qerror_percentiles_of(&pairs);
        let s = QErrorSummary::from_predictions(&pairs);
        assert_eq!(p.p50, s.median);
        assert_eq!(p.p95, s.p95);
        assert_eq!(p.max, s.max);
        assert_eq!(median_qerror_of(&pairs), s.median);
        assert!(p.max >= p.p95 && p.p95 >= p.p50);
    }

    #[test]
    fn qerror_percentiles_empty_input_is_nan() {
        let p = qerror_percentiles(&[]);
        assert!(p.p50.is_nan() && p.p95.is_nan() && p.max.is_nan());
    }

    #[test]
    fn evaluation_report_formats() {
        let report = evaluate_predictions("scale", &[(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(report.workload, "scale");
        assert_eq!(report.qerrors.count, 2);
        assert!(report.to_string().starts_with("scale"));
    }

    #[test]
    fn evaluate_untrained_model_still_produces_finite_summary() {
        let db = Database::generate(presets::imdb_like(0.02), 9);
        let executions = collect_for_database(&db, &WorkloadSpec::paper_training(), 10, 1);
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 1,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::estimated(),
        );
        // "Train" on the evaluation db itself just to obtain a TrainedModel
        // quickly; this test only checks the evaluation plumbing.
        let graphs: Vec<PlanGraph> = executions
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::estimated()))
            .collect();
        let trained = trainer.train(&graphs);
        let report = evaluate(&trained, &db, "synthetic", &executions);
        assert!(report.qerrors.median.is_finite());
        assert!(report.qerrors.max >= report.qerrors.p95);
        assert!(report.qerrors.p95 >= report.qerrors.median);
        let graph_report = evaluate_graphs(&trained, "synthetic", &graphs);
        assert_eq!(graph_report.qerrors.count, report.qerrors.count);
    }
}
