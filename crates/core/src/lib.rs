//! # zsdb-core — Zero-Shot Cost Estimation for Databases
//!
//! Implementation of the central idea of *"One Model to Rule them All:
//! Towards Zero-Shot Learning for Databases"* (Hilprecht & Binnig, CIDR
//! 2022): a cost model trained on query executions collected from **many
//! different databases** that predicts query runtimes on an **unseen**
//! database out of the box.
//!
//! The three ingredients, mirroring the paper:
//!
//! 1. **Transferable query representation** ([`features`]) — an executed
//!    physical plan is encoded as a DAG whose nodes are plan operators,
//!    tables, columns, predicates and aggregations, each annotated with
//!    database-independent features (data types, tuple/page counts,
//!    cardinalities, operator kinds) instead of one-hot table/column ids.
//! 2. **DAG message-passing model** ([`model`]) — per-node-type encoder
//!    MLPs produce hidden states which are combined bottom-up (children
//!    summed DeepSets-style, combined with the parent through an MLP); the
//!    root hidden state is decoded into a runtime prediction.
//! 3. **Multi-database training** ([`dataset`], [`train`]) — training data
//!    is collected by running generated workloads on a corpus of generated
//!    databases; the trained model is then evaluated ([`eval`]) on
//!    databases it has never seen, optionally fine-tuned with a handful of
//!    queries ([`train::few_shot_finetune`]) or asked *what-if* questions
//!    about hypothetical indexes ([`whatif`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod batch;
pub mod dataset;
pub mod eval;
pub mod features;
pub mod fingerprint;
pub mod model;
pub mod train;
pub mod whatif;

pub use arena::GraphArena;
pub use batch::{BatchBackprop, BatchSchedule, EncodeScratch, EncoderTrace, NodeStates};
pub use dataset::{collect_for_database, collect_training_corpus, TrainingDataConfig};
pub use eval::{
    evaluate, evaluate_graphs, evaluate_predictions, median_qerror_of, predict_runtime,
    qerror_percentiles, qerror_percentiles_of, EvaluationReport, QErrorPercentiles,
};
pub use features::{
    featurize_execution_into, featurize_plan_into, CardinalityMode, FeatureMode, FeaturizerConfig,
    NodeKind, PlanGraph,
};
pub use fingerprint::{graph_fingerprint, plan_fingerprint};
pub use model::{InferenceScratch, ModelConfig, PlanEncoder, ZeroShotCostModel};
pub use train::{
    compute_shard_results, few_shot_finetune, few_shot_finetune_with, FinetuneConfig, ReplicaSync,
    TrainedModel, Trainer, TrainingConfig,
};
pub use whatif::WhatIfCostEstimator;
