//! Training, validation and few-shot fine-tuning of zero-shot cost models.
//!
//! [`Trainer::train`] is the **batched** trainer: every optimizer step
//! forwards a shuffled mini-batch of plan graphs through the
//! (level, kind)-batched message-passing engine
//! ([`crate::batch`]), with the mini-batch split into fixed-size
//! micro-batch *shards* whose gradients are computed independently
//! (optionally on `std::thread` workers) and reduced in ascending shard
//! order.  Because the shard boundaries depend only on the configuration
//! — never on the thread count — training with 1 thread and with N
//! threads produces **bit-identical** weights.
//!
//! The original one-graph-at-a-time loop is retained as
//! [`Trainer::train_per_example`]; it is the reference implementation the
//! batched path is benchmarked against (`bench_train`).

use crate::features::{featurize_execution, FeaturizerConfig, PlanGraph};
use crate::model::{ModelConfig, ZeroShotCostModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use zsdb_engine::QueryExecution;
use zsdb_nn::{median, q_error, Adam};
use zsdb_obs::Tracer;
use zsdb_storage::Database;

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the training corpus (upper bound when early
    /// stopping is enabled).
    pub epochs: usize,
    /// Mini-batch size (graphs per optimizer step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Fraction of training *databases* held out for validation (0 = no
    /// validation split).
    pub validation_fraction: f64,
    /// Shuffling / initialisation seed.
    pub seed: u64,
    /// Fixed shard granularity of data-parallel gradient accumulation:
    /// each mini-batch is split into micro-batches of at most this many
    /// graphs, whose gradients are computed independently and reduced in
    /// ascending micro-batch order.  The shard boundaries depend only on
    /// this value — not on [`TrainingConfig::threads`] — which is what
    /// makes training results independent of the thread count.
    pub microbatch_size: usize,
    /// Worker threads for micro-batch gradient computation (0 = one per
    /// available CPU core).  Any value produces bit-identical weights.
    pub threads: usize,
    /// Early stopping: abort after this many epochs without improvement
    /// of the monitored median Q-error (validation when a split exists,
    /// training otherwise) and return the best epoch's weights.  0
    /// disables early stopping.
    pub early_stopping_patience: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 40,
            batch_size: 16,
            learning_rate: 1.5e-3,
            validation_fraction: 0.1,
            seed: 13,
            microbatch_size: 8,
            threads: 1,
            early_stopping_patience: 6,
        }
    }
}

impl TrainingConfig {
    /// Fast configuration for unit tests.  Early stopping is disabled so
    /// test assertions about full training curves stay deterministic.
    pub fn tiny() -> Self {
        TrainingConfig {
            epochs: 60,
            batch_size: 8,
            validation_fraction: 0.0,
            microbatch_size: 4,
            early_stopping_patience: 0,
            ..TrainingConfig::default()
        }
    }

    /// Effective number of worker threads (resolves the `0 = auto`
    /// setting against the machine's available parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Hyper-parameters of incremental fine-tuning: continuing training from
/// an already-trained model on a (typically small) set of newly observed
/// executions, e.g. few-shot adaptation to an unseen database or an online
/// adaptation round inside the serving layer.
///
/// Fine-tuning runs on the same batched, sharded gradient engine as
/// [`Trainer::train`], so the 1-thread ≡ N-thread bit-determinism
/// guarantee carries over: the shard boundaries depend only on
/// [`FinetuneConfig::microbatch_size`], never on
/// [`FinetuneConfig::threads`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Number of passes over the fine-tuning set.
    pub epochs: usize,
    /// Adam learning rate (fine-tuning wants a smaller step than initial
    /// training — the model starts near a good optimum).
    pub learning_rate: f64,
    /// Mini-batch size; `0` means full-batch (one optimizer step per
    /// epoch), the natural choice for few-shot-sized sets.
    pub batch_size: usize,
    /// Micro-batch shard granularity of the deterministic data-parallel
    /// gradient accumulation (see [`TrainingConfig::microbatch_size`]).
    pub microbatch_size: usize,
    /// Worker threads (0 = one per core); any value produces bit-identical
    /// weights.
    pub threads: usize,
    /// Shuffling seed (only relevant when `batch_size` splits the set).
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            epochs: 30,
            learning_rate: 3e-4,
            batch_size: 0,
            microbatch_size: 8,
            threads: 1,
            seed: 17,
        }
    }
}

impl FinetuneConfig {
    /// Effective number of worker threads (resolves the `0 = auto`
    /// setting, mirroring [`TrainingConfig::effective_threads`]).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A trained zero-shot model together with its featurizer configuration and
/// training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The trained model.
    pub model: ZeroShotCostModel,
    /// Featurizer configuration used during training (and required at
    /// inference time).
    pub featurizer: FeaturizerConfig,
    /// Median training Q-error of the returned weights.
    pub final_train_qerror: f64,
    /// Median validation Q-error of the returned weights (`None` when no
    /// validation split was used).
    pub final_validation_qerror: Option<f64>,
    /// Per-epoch median training Q-errors (training curve; one entry per
    /// epoch actually run).
    pub training_curve: Vec<f64>,
    /// Per-epoch median validation Q-errors (empty without a validation
    /// split).
    pub validation_curve: Vec<f64>,
    /// Whether early stopping ended training before
    /// [`TrainingConfig::epochs`] epochs.
    pub stopped_early: bool,
}

impl TrainedModel {
    /// Predict the runtime (seconds) of a featurized plan.
    pub fn predict(&self, graph: &PlanGraph) -> f64 {
        self.model.predict(graph)
    }

    /// Batched runtime prediction, bit-identical per graph to
    /// [`TrainedModel::predict`].
    pub fn predict_batch(&self, graphs: &[&PlanGraph]) -> Vec<f64> {
        self.model.predict_batch(graphs)
    }

    /// Serialize to JSON (for persistence).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained model serialization cannot fail")
    }

    /// Restore from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Trainer for zero-shot cost models.
#[derive(Debug, Clone)]
pub struct Trainer {
    model_config: ModelConfig,
    training_config: TrainingConfig,
    featurizer: FeaturizerConfig,
    tracer: Option<Tracer>,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(
        model_config: ModelConfig,
        training_config: TrainingConfig,
        featurizer: FeaturizerConfig,
    ) -> Self {
        Trainer {
            model_config,
            training_config,
            featurizer,
            tracer: None,
        }
    }

    /// Attach a [`Tracer`]: [`Trainer::train`] then emits one
    /// `train.epoch_secs` event per epoch (wall time, shard-gradient time
    /// and the epoch's median q-error in the detail).  Tracing never
    /// changes the trained weights.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Trainer with default hyper-parameters and exact-cardinality
    /// featurization.
    pub fn with_defaults() -> Self {
        Trainer::new(
            ModelConfig::default(),
            TrainingConfig::default(),
            FeaturizerConfig::exact(),
        )
    }

    /// The trainer's training configuration.
    pub fn training_config(&self) -> &TrainingConfig {
        &self.training_config
    }

    /// Featurize a multi-database corpus of executions.
    ///
    /// Every execution is featurized against the catalog of the database it
    /// ran on — `catalogs` maps database names to catalogs via the supplied
    /// lookup closure.
    pub fn featurize_corpus<'a, F>(
        &self,
        corpus: &[QueryExecution],
        mut catalog_of: F,
    ) -> Vec<PlanGraph>
    where
        F: FnMut(&str) -> &'a zsdb_catalog::SchemaCatalog,
    {
        corpus
            .iter()
            .map(|e| featurize_execution(catalog_of(&e.database), e, self.featurizer))
            .collect()
    }

    /// Train a model on already-featurized plan graphs (each must carry its
    /// runtime label) with the batched engine: shuffled mini-batches,
    /// (level, kind)-batched message passing, deterministic sharded
    /// gradient accumulation, validation split and early stopping.
    ///
    /// Graphs in the validation tail split are evaluated but never trained
    /// on.
    pub fn train(&self, graphs: &[PlanGraph]) -> TrainedModel {
        assert!(
            graphs.iter().all(|g| g.runtime_secs.is_some()),
            "all training graphs must carry runtime labels"
        );
        let cfg = &self.training_config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Split into train / validation by index (graphs from the same
        // database are contiguous in collection order, so a tail split
        // approximates a database-level holdout).
        let val_len = ((graphs.len() as f64) * cfg.validation_fraction) as usize;
        let (train_graphs, val_graphs) = graphs.split_at(graphs.len() - val_len);

        let mut model = ZeroShotCostModel::new(self.model_config);
        let mut adam = Adam::new(cfg.learning_rate);
        let threads = cfg.effective_threads();
        let batch_size = cfg.batch_size.max(1);
        let microbatch = cfg.microbatch_size.max(1);

        // Worker replicas compute shard gradients against a snapshot of
        // the current weights.  A single replica is used even when
        // `threads == 1`, so the reduction structure (zeroed shard buffer
        // → flat export → ordered add) never depends on the thread count.
        let mut replicas: Vec<ZeroShotCostModel> =
            (0..threads.min(batch_size.div_ceil(microbatch)).max(1))
                .map(|_| model.clone())
                .collect();

        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();
        let mut training_curve = Vec::with_capacity(cfg.epochs);
        let mut validation_curve = Vec::new();
        let mut best: Option<(f64, ZeroShotCostModel)> = None;
        let mut epochs_without_improvement = 0usize;
        let mut stopped_early = false;

        let mut epoch_qerrors: Vec<f64> = Vec::with_capacity(train_graphs.len());
        for epoch in 0..cfg.epochs {
            let epoch_started = Instant::now();
            let mut shard_secs = 0.0f64;
            indices.shuffle(&mut rng);
            epoch_qerrors.clear();
            for step in indices.chunks(batch_size) {
                let micro_batches: Vec<&[usize]> = step.chunks(microbatch).collect();
                let shard_started = Instant::now();
                let shards =
                    compute_shard_gradients(&model, &mut replicas, train_graphs, &micro_batches);
                shard_secs += shard_started.elapsed().as_secs_f64();
                model.zero_grad();
                for shard in &shards {
                    model.add_gradients(&shard.gradients);
                }
                model.apply_step(&mut adam);
                for shard in shards {
                    epoch_qerrors.extend(shard.qerrors);
                }
            }

            // Running training metric: the median Q-error of the
            // predictions made by the epoch's own training forwards (no
            // separate evaluation pass over the training set).
            let train_q = median(&epoch_qerrors);
            training_curve.push(train_q);
            if let Some(tracer) = &self.tracer {
                tracer.event(
                    "train.epoch_secs",
                    epoch_started.elapsed().as_secs_f64(),
                    format!(
                        "epoch {epoch}: median q-error {train_q:.4}, {shard_secs:.6}s in shard gradients"
                    ),
                );
            }
            let monitored = if val_graphs.is_empty() {
                train_q
            } else {
                let val_q = median_q_error(&model, val_graphs);
                validation_curve.push(val_q);
                val_q
            };

            if cfg.early_stopping_patience > 0 {
                let improved = best.as_ref().map(|(b, _)| monitored < *b).unwrap_or(true);
                if improved {
                    best = Some((monitored, model.clone()));
                    epochs_without_improvement = 0;
                } else {
                    epochs_without_improvement += 1;
                    if epochs_without_improvement >= cfg.early_stopping_patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        // With early stopping enabled, return the best-epoch weights.
        if let Some((_, best_model)) = best {
            model = best_model;
        }

        let final_train_qerror = median_q_error(&model, train_graphs);
        let final_validation_qerror = if val_graphs.is_empty() {
            None
        } else {
            Some(median_q_error(&model, val_graphs))
        };
        TrainedModel {
            model,
            featurizer: self.featurizer,
            final_train_qerror,
            final_validation_qerror,
            training_curve,
            validation_curve,
            stopped_early,
        }
    }

    /// Incrementally fine-tune an already-trained model on newly observed
    /// (labelled) plan graphs, returning a new [`TrainedModel`]; `trained`
    /// is not modified.
    ///
    /// This is the one fine-tuning path in the workspace: few-shot
    /// adaptation ([`few_shot_finetune`]) and the online adaptation loop
    /// in `zsdb_serve` both run through it.  It reuses the batched shard
    /// engine of [`Trainer::train`], so fine-tuning with 1 thread and
    /// with N threads produces **bit-identical** weights.
    pub fn finetune_from(
        trained: &TrainedModel,
        graphs: &[PlanGraph],
        config: FinetuneConfig,
    ) -> TrainedModel {
        Trainer::finetune_from_traced(trained, graphs, config, None)
    }

    /// [`Trainer::finetune_from`] emitting one `finetune.epoch_secs`
    /// event per epoch on the given tracer (wall time, shard-gradient
    /// time and the epoch's median q-error in the detail).  Tracing never
    /// changes the fine-tuned weights.
    pub fn finetune_from_traced(
        trained: &TrainedModel,
        graphs: &[PlanGraph],
        config: FinetuneConfig,
        tracer: Option<&Tracer>,
    ) -> TrainedModel {
        assert!(
            graphs.iter().all(|g| g.runtime_secs.is_some()),
            "all fine-tuning graphs must carry runtime labels"
        );
        assert!(!graphs.is_empty(), "fine-tuning needs at least one graph");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = trained.model.clone();
        let mut adam = Adam::new(config.learning_rate);
        let batch_size = if config.batch_size == 0 {
            graphs.len()
        } else {
            config.batch_size.max(1)
        };
        let microbatch = config.microbatch_size.max(1);
        let threads = config.effective_threads();
        let mut replicas: Vec<ZeroShotCostModel> =
            (0..threads.min(batch_size.div_ceil(microbatch)).max(1))
                .map(|_| model.clone())
                .collect();

        let mut indices: Vec<usize> = (0..graphs.len()).collect();
        let mut training_curve = Vec::with_capacity(config.epochs);
        let mut epoch_qerrors: Vec<f64> = Vec::with_capacity(graphs.len());
        for epoch in 0..config.epochs {
            let epoch_started = Instant::now();
            let mut shard_secs = 0.0f64;
            indices.shuffle(&mut rng);
            epoch_qerrors.clear();
            for step in indices.chunks(batch_size) {
                let micro_batches: Vec<&[usize]> = step.chunks(microbatch).collect();
                let shard_started = Instant::now();
                let shards = compute_shard_gradients(&model, &mut replicas, graphs, &micro_batches);
                shard_secs += shard_started.elapsed().as_secs_f64();
                model.zero_grad();
                for shard in &shards {
                    model.add_gradients(&shard.gradients);
                }
                model.apply_step(&mut adam);
                for shard in shards {
                    epoch_qerrors.extend(shard.qerrors);
                }
            }
            let epoch_q = median(&epoch_qerrors);
            training_curve.push(epoch_q);
            if let Some(tracer) = tracer {
                tracer.event(
                    "finetune.epoch_secs",
                    epoch_started.elapsed().as_secs_f64(),
                    format!(
                        "epoch {epoch}: median q-error {epoch_q:.4}, {shard_secs:.6}s in shard gradients"
                    ),
                );
            }
        }

        let final_train_qerror = median_q_error(&model, graphs);
        TrainedModel {
            model,
            featurizer: trained.featurizer,
            final_train_qerror,
            final_validation_qerror: None,
            training_curve,
            validation_curve: Vec::new(),
            stopped_early: false,
        }
    }

    /// The pre-batching reference trainer: one graph at a time through
    /// per-node mat-vec message passing, gradients accumulated directly
    /// into the model.
    ///
    /// Kept (verbatim from the original implementation) as the baseline
    /// that `bench_train` measures the batched engine against, and as an
    /// independent oracle for equivalence tests.  New code should use
    /// [`Trainer::train`].
    pub fn train_per_example(&self, graphs: &[PlanGraph]) -> TrainedModel {
        assert!(
            graphs.iter().all(|g| g.runtime_secs.is_some()),
            "all training graphs must carry runtime labels"
        );
        let cfg = &self.training_config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let val_len = ((graphs.len() as f64) * cfg.validation_fraction) as usize;
        let (train_graphs, val_graphs) = graphs.split_at(graphs.len() - val_len);

        let mut model = ZeroShotCostModel::new(self.model_config);
        let mut adam = Adam::new(cfg.learning_rate);
        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();
        let mut training_curve = Vec::with_capacity(cfg.epochs);

        for _epoch in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut batch_count = 0usize;
            model.zero_grad();
            for &i in &indices {
                let g = &train_graphs[i];
                model.accumulate_gradients(g, g.runtime_secs.expect("labelled"));
                batch_count += 1;
                if batch_count == cfg.batch_size {
                    model.apply_step(&mut adam);
                    model.zero_grad();
                    batch_count = 0;
                }
            }
            if batch_count > 0 {
                model.apply_step(&mut adam);
                model.zero_grad();
            }
            training_curve.push(median_q_error_per_example(&model, train_graphs));
        }

        let final_train_qerror = *training_curve.last().unwrap_or(&f64::NAN);
        let final_validation_qerror = if val_graphs.is_empty() {
            None
        } else {
            Some(median_q_error_per_example(&model, val_graphs))
        };
        TrainedModel {
            model,
            featurizer: self.featurizer,
            final_train_qerror,
            final_validation_qerror,
            training_curve,
            validation_curve: Vec::new(),
            stopped_early: false,
        }
    }
}

/// One shard's contribution to an optimizer step.
struct ShardResult {
    /// Flat gradient vector (canonical parameter order).
    gradients: Vec<f64>,
    /// Q-errors of the shard's training-forward predictions.
    qerrors: Vec<f64>,
}

/// A model whose weights can be mirrored into per-thread training
/// replicas — the only capability the generic sharded gradient scheduler
/// ([`compute_shard_results`]) needs from a model.
///
/// Implemented by the single-head [`ZeroShotCostModel`] and by the
/// multi-task model in `zsdb_multitask`, so both trainers share one
/// deterministic data-parallel engine regardless of how many task heads
/// hang off the encoder.
pub trait ReplicaSync: Clone + Send {
    /// Copy the parameter *values* (not gradients or optimizer moments)
    /// from `src` into `self`.
    fn sync_weights_from(&mut self, src: &Self);
}

impl ReplicaSync for ZeroShotCostModel {
    fn sync_weights_from(&mut self, src: &Self) {
        self.copy_weights_from(src);
    }
}

/// Run `run_shard` over every micro-batch shard, in shard order, using up
/// to `replicas.len()` worker threads, and return the per-shard results in
/// ascending shard order.
///
/// This is the deterministic data-parallel core shared by every trainer in
/// the workspace (single-head and multi-task): each shard is computed
/// against a replica freshly synced to `model`'s weights, work
/// distribution across threads is dynamic (an atomic cursor), but since
/// each shard is computed independently and results are returned in shard
/// order, the *outcome* — and therefore training — does not depend on
/// which thread computed which shard or how many threads ran.
///
/// `run_shard` is expected to zero the replica's gradients, accumulate the
/// shard and export whatever the trainer reduces (typically a flat
/// gradient vector plus metrics).
pub fn compute_shard_results<M, R, F>(
    model: &M,
    replicas: &mut [M],
    micro_batches: &[&[usize]],
    run_shard: F,
) -> Vec<R>
where
    M: ReplicaSync,
    R: Send,
    F: Fn(&mut M, &[usize]) -> R + Sync,
{
    // Only the replicas that will actually run a shard need this step's
    // weights (e.g. the final partial mini-batch of an epoch may have a
    // single shard).
    let used = replicas.len().min(micro_batches.len()).max(1);
    let replicas = &mut replicas[..used];
    for replica in replicas.iter_mut() {
        replica.sync_weights_from(model);
    }

    if replicas.len() <= 1 || micro_batches.len() <= 1 {
        let replica = replicas.first_mut().expect("at least one replica");
        return micro_batches
            .iter()
            .map(|shard| run_shard(replica, shard))
            .collect();
    }

    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..micro_batches.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for replica in replicas.iter_mut() {
            let slots = &slots;
            let cursor = &cursor;
            let run_shard = &run_shard;
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= micro_batches.len() {
                    break;
                }
                let result = run_shard(replica, micro_batches[k]);
                slots.lock().expect("shard slots poisoned")[k] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("shard slots poisoned")
        .into_iter()
        .map(|s| s.expect("every shard computed"))
        .collect()
}

/// Compute the flat gradient vector of every micro-batch shard of the
/// single-head cost model (see [`compute_shard_results`] for the
/// scheduling and determinism contract).
fn compute_shard_gradients(
    model: &ZeroShotCostModel,
    replicas: &mut [ZeroShotCostModel],
    train_graphs: &[PlanGraph],
    micro_batches: &[&[usize]],
) -> Vec<ShardResult> {
    compute_shard_results(model, replicas, micro_batches, |replica, shard| {
        let refs: Vec<&PlanGraph> = shard.iter().map(|&i| &train_graphs[i]).collect();
        let targets: Vec<f64> = refs
            .iter()
            .map(|g| g.runtime_secs.expect("labelled"))
            .collect();
        replica.zero_grad();
        let backprop = replica.accumulate_gradients_batch(&refs, &targets);
        let mut gradients = Vec::new();
        replica.export_gradients(&mut gradients);
        ShardResult {
            gradients,
            qerrors: backprop
                .predictions
                .iter()
                .zip(&targets)
                .map(|(p, t)| q_error(*p, *t))
                .collect(),
        }
    })
}

/// Median Q-error of a model over labelled graphs, evaluated through the
/// batched forward pass (bit-identical to per-example prediction).
pub fn median_q_error(model: &ZeroShotCostModel, graphs: &[PlanGraph]) -> f64 {
    let labelled: Vec<&PlanGraph> = graphs.iter().filter(|g| g.runtime_secs.is_some()).collect();
    let qs: Vec<f64> = crate::eval::batched_predictions(model, &labelled)
        .into_iter()
        .zip(&labelled)
        .map(|(p, g)| q_error(p, g.runtime_secs.expect("labelled")))
        .collect();
    median(&qs)
}

/// Per-example counterpart of [`median_q_error`], used by the reference
/// trainer so its measured cost matches the pre-batching implementation.
fn median_q_error_per_example(model: &ZeroShotCostModel, graphs: &[PlanGraph]) -> f64 {
    let qs: Vec<f64> = graphs
        .iter()
        .filter_map(|g| g.runtime_secs.map(|rt| q_error(model.predict(g), rt)))
        .collect();
    median(&qs)
}

/// Few-shot fine-tuning: continue training an existing zero-shot model with
/// a small number of executions from the (previously unseen) target
/// database.  Returns a new `TrainedModel`; the original is not modified.
///
/// Featurizes the executions with the model's own featurizer and runs
/// [`few_shot_finetune_with`] (full-batch by default — fine-tuning sets
/// are tiny by definition) with the given epoch/learning-rate overrides.
pub fn few_shot_finetune(
    trained: &TrainedModel,
    target_db: &Database,
    executions: &[QueryExecution],
    epochs: usize,
    learning_rate: f64,
) -> TrainedModel {
    few_shot_finetune_with(
        trained,
        target_db,
        executions,
        FinetuneConfig {
            epochs,
            learning_rate,
            ..FinetuneConfig::default()
        },
    )
}

/// [`few_shot_finetune`] with full control over the fine-tuning
/// hyper-parameters: featurize the target-database executions with the
/// model's own featurizer, then run [`Trainer::finetune_from`].
pub fn few_shot_finetune_with(
    trained: &TrainedModel,
    target_db: &Database,
    executions: &[QueryExecution],
    config: FinetuneConfig,
) -> TrainedModel {
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| featurize_execution(target_db.catalog(), e, trained.featurizer))
        .collect();
    Trainer::finetune_from(trained, &graphs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{collect_for_database, collect_training_corpus, TrainingDataConfig};
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadSpec;

    fn featurized_tiny_corpus() -> Vec<PlanGraph> {
        let config = TrainingDataConfig::tiny();
        let corpus = collect_training_corpus(&config);
        // Rebuild the catalogs the corpus was generated from.
        let schemas = zsdb_catalog::SchemaGenerator::new(config.schema_config.clone())
            .generate_corpus("train", config.num_databases, config.seed);
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        trainer.featurize_corpus(&corpus, |name| {
            schemas
                .iter()
                .find(|s| s.name == name)
                .expect("catalog for corpus database")
        })
    }

    #[test]
    fn training_reduces_qerror() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        let first = trained.training_curve.first().copied().unwrap();
        let last = trained.final_train_qerror;
        assert!(last < first, "q-error should improve: {first} -> {last}");
        assert!(last < 2.5, "final training q-error too high: {last}");
    }

    #[test]
    fn trained_model_generalizes_to_unseen_database() {
        // Train on the tiny synthetic corpus, evaluate on the IMDB-like
        // database the model has never seen.  Zero-shot predictions should
        // be far better than a naive constant predictor.
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);

        let imdb = Database::generate(presets::imdb_like(0.02), 42);
        let eval_execs = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 30, 77);
        let eval_graphs: Vec<PlanGraph> = eval_execs
            .iter()
            .map(|e| featurize_execution(imdb.catalog(), e, trained.featurizer))
            .collect();
        let zero_shot_q = median_q_error(&trained.model, &eval_graphs);

        // Naive baseline: always predict the mean training runtime.
        let mean_runtime =
            graphs.iter().filter_map(|g| g.runtime_secs).sum::<f64>() / graphs.len() as f64;
        let naive_q = median(
            &eval_execs
                .iter()
                .map(|e| q_error(mean_runtime, e.runtime_secs))
                .collect::<Vec<_>>(),
        );
        assert!(
            zero_shot_q < naive_q,
            "zero-shot {zero_shot_q} should beat naive {naive_q}"
        );
        assert!(zero_shot_q < 5.0, "zero-shot median q-error {zero_shot_q}");
    }

    #[test]
    fn few_shot_improves_on_target_database() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);

        let imdb = Database::generate(presets::imdb_like(0.02), 42);
        let target_execs = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 40, 5);
        let (finetune_set, holdout) = target_execs.split_at(25);

        let holdout_graphs: Vec<PlanGraph> = holdout
            .iter()
            .map(|e| featurize_execution(imdb.catalog(), e, trained.featurizer))
            .collect();
        let before = median_q_error(&trained.model, &holdout_graphs);
        let finetuned = few_shot_finetune(&trained, &imdb, finetune_set, 30, 3e-4);
        let after = median_q_error(&finetuned.model, &holdout_graphs);
        assert!(
            after <= before * 1.15,
            "few-shot should not make things much worse: {before} -> {after}"
        );
    }

    #[test]
    fn finetune_from_is_thread_count_deterministic() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let base = trainer.train(&graphs);
        let finetune_set = &graphs[..12];
        let tune = |threads: usize| {
            Trainer::finetune_from(
                &base,
                finetune_set,
                FinetuneConfig {
                    epochs: 4,
                    batch_size: 8,
                    microbatch_size: 3,
                    threads,
                    ..FinetuneConfig::default()
                },
            )
        };
        let one = tune(1);
        let two = tune(2);
        let four = tune(4);
        assert_eq!(one.model.to_json(), two.model.to_json());
        assert_eq!(one.model.to_json(), four.model.to_json());
        assert_eq!(one.training_curve, two.training_curve);
        // Fine-tuning actually moved the weights.
        assert_ne!(one.model.to_json(), base.model.to_json());
        // The input model is untouched and the featurizer rides along.
        assert_eq!(one.featurizer, base.featurizer);
    }

    #[test]
    fn finetune_from_improves_fit_on_the_finetuning_set() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                validation_fraction: 0.0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let base = trainer.train(&graphs);
        let finetune_set = &graphs[..16];
        let before = median_q_error(&base.model, finetune_set);
        let tuned = Trainer::finetune_from(
            &base,
            finetune_set,
            FinetuneConfig {
                epochs: 25,
                ..FinetuneConfig::default()
            },
        );
        assert!(
            tuned.final_train_qerror <= before * 1.05,
            "fine-tuning should not hurt the set it fits: {before} -> {}",
            tuned.final_train_qerror
        );
        assert_eq!(tuned.training_curve.len(), 25);
    }

    #[test]
    fn attached_tracer_records_epochs_without_changing_weights() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 3,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let tracer = Tracer::new(64);
        let plain = trainer.train(&graphs);
        let traced = trainer.clone().with_tracer(tracer.clone()).train(&graphs);
        assert_eq!(
            plain.model.to_json(),
            traced.model.to_json(),
            "tracing must not perturb training"
        );
        let epochs: Vec<_> = tracer
            .events(16)
            .into_iter()
            .filter(|e| e.name == "train.epoch_secs")
            .collect();
        assert_eq!(epochs.len(), 3, "one event per epoch");
        assert!(epochs.iter().all(|e| e.value >= 0.0));
        assert!(epochs.iter().any(|e| e.detail.contains("shard gradients")));

        let tuned = Trainer::finetune_from_traced(
            &plain,
            &graphs[..8],
            FinetuneConfig {
                epochs: 2,
                ..FinetuneConfig::default()
            },
            Some(&tracer),
        );
        assert_eq!(tuned.training_curve.len(), 2);
        let finetune_epochs = tracer
            .events(32)
            .into_iter()
            .filter(|e| e.name == "finetune.epoch_secs")
            .count();
        assert_eq!(finetune_epochs, 2);
    }

    #[test]
    fn trained_model_serialization_roundtrip() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        let json = trained.to_json();
        let restored = TrainedModel::from_json(&json).unwrap();
        assert!((restored.predict(&graphs[0]) - trained.predict(&graphs[0])).abs() < 1e-9);
        assert_eq!(restored.stopped_early, trained.stopped_early);
        assert_eq!(restored.training_curve.len(), trained.training_curve.len());
    }

    #[test]
    fn one_thread_and_two_thread_training_produce_identical_weights() {
        // The determinism guarantee of the sharded gradient reduction:
        // shard boundaries are fixed by `microbatch_size`, shard gradients
        // are reduced in ascending shard order, so the thread count must
        // not change a single bit of the trained weights.
        let graphs = featurized_tiny_corpus();
        let base = TrainingConfig {
            epochs: 3,
            batch_size: 8,
            microbatch_size: 3,
            validation_fraction: 0.1,
            early_stopping_patience: 0,
            ..TrainingConfig::tiny()
        };
        let train_with = |threads: usize| {
            Trainer::new(
                ModelConfig::tiny(),
                TrainingConfig { threads, ..base },
                FeaturizerConfig::exact(),
            )
            .train(&graphs)
        };
        let one = train_with(1);
        let two = train_with(2);
        let four = train_with(4);
        assert_eq!(one.model.to_json(), two.model.to_json());
        assert_eq!(one.model.to_json(), four.model.to_json());
        for g in graphs.iter().take(10) {
            assert_eq!(one.predict(g).to_bits(), two.predict(g).to_bits());
        }
        assert_eq!(one.training_curve, two.training_curve);
        assert_eq!(one.validation_curve, two.validation_curve);
    }

    #[test]
    fn validation_split_and_early_stopping_work_together() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 60,
                validation_fraction: 0.25,
                early_stopping_patience: 2,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);

        // A validation split was carved out and evaluated every epoch.
        assert_eq!(trained.validation_curve.len(), trained.training_curve.len());
        let final_val = trained
            .final_validation_qerror
            .expect("validation split requested");
        assert!(final_val.is_finite());

        // The returned weights are the *best* monitored epoch, not the
        // last one.
        let best_seen = trained
            .validation_curve
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            (final_val - best_seen).abs() < 1e-12,
            "returned model should be the best epoch: best {best_seen}, got {final_val}"
        );

        // With patience 2 over 60 epochs on a tiny corpus, early stopping
        // fires well before the epoch cap.
        assert!(
            trained.stopped_early || trained.training_curve.len() == 60,
            "curve bookkeeping is consistent"
        );
    }

    #[test]
    fn early_stopping_disabled_runs_all_epochs() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 4,
                early_stopping_patience: 0,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        assert_eq!(trained.training_curve.len(), 4);
        assert!(!trained.stopped_early);
    }

    #[test]
    fn batched_and_per_example_trainers_converge_to_similar_quality() {
        // The two trainers differ in gradient summation order, so weights
        // are not bit-equal — but both must fit the same tiny corpus to a
        // comparable final q-error.
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let batched = trainer.train(&graphs);
        let reference = trainer.train_per_example(&graphs);
        assert!(batched.final_train_qerror < 2.5);
        assert!(reference.final_train_qerror < 2.5);
    }
}
