//! Training, validation and few-shot fine-tuning of zero-shot cost models.

use crate::features::{featurize_execution, FeaturizerConfig, PlanGraph};
use crate::model::{ModelConfig, ZeroShotCostModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use zsdb_engine::QueryExecution;
use zsdb_nn::{median, q_error, Adam};
use zsdb_storage::Database;

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the training corpus.
    pub epochs: usize,
    /// Mini-batch size (gradient accumulation before an Adam step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Fraction of training *databases* held out for validation (0 = no
    /// validation split).
    pub validation_fraction: f64,
    /// Shuffling / initialisation seed.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 40,
            batch_size: 16,
            learning_rate: 1.5e-3,
            validation_fraction: 0.1,
            seed: 13,
        }
    }
}

impl TrainingConfig {
    /// Fast configuration for unit tests.
    pub fn tiny() -> Self {
        TrainingConfig {
            epochs: 60,
            batch_size: 8,
            validation_fraction: 0.0,
            ..TrainingConfig::default()
        }
    }
}

/// A trained zero-shot model together with its featurizer configuration and
/// training statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The trained model.
    pub model: ZeroShotCostModel,
    /// Featurizer configuration used during training (and required at
    /// inference time).
    pub featurizer: FeaturizerConfig,
    /// Median training Q-error after the last epoch.
    pub final_train_qerror: f64,
    /// Median validation Q-error after the last epoch (`None` when no
    /// validation split was used).
    pub final_validation_qerror: Option<f64>,
    /// Per-epoch median training Q-errors (training curve).
    pub training_curve: Vec<f64>,
}

impl TrainedModel {
    /// Predict the runtime (seconds) of a featurized plan.
    pub fn predict(&self, graph: &PlanGraph) -> f64 {
        self.model.predict(graph)
    }

    /// Serialize to JSON (for persistence).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained model serialization cannot fail")
    }

    /// Restore from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Trainer for zero-shot cost models.
#[derive(Debug, Clone)]
pub struct Trainer {
    model_config: ModelConfig,
    training_config: TrainingConfig,
    featurizer: FeaturizerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(
        model_config: ModelConfig,
        training_config: TrainingConfig,
        featurizer: FeaturizerConfig,
    ) -> Self {
        Trainer {
            model_config,
            training_config,
            featurizer,
        }
    }

    /// Trainer with default hyper-parameters and exact-cardinality
    /// featurization.
    pub fn with_defaults() -> Self {
        Trainer::new(
            ModelConfig::default(),
            TrainingConfig::default(),
            FeaturizerConfig::exact(),
        )
    }

    /// Featurize a multi-database corpus of executions.
    ///
    /// Every execution is featurized against the catalog of the database it
    /// ran on — `catalogs` maps database names to catalogs via the supplied
    /// lookup closure.
    pub fn featurize_corpus<'a, F>(
        &self,
        corpus: &[QueryExecution],
        mut catalog_of: F,
    ) -> Vec<PlanGraph>
    where
        F: FnMut(&str) -> &'a zsdb_catalog::SchemaCatalog,
    {
        corpus
            .iter()
            .map(|e| featurize_execution(catalog_of(&e.database), e, self.featurizer))
            .collect()
    }

    /// Train a model on already-featurized plan graphs (each must carry its
    /// runtime label).  Graphs whose `database` is in the validation split
    /// are evaluated but not trained on.
    pub fn train(&self, graphs: &[PlanGraph]) -> TrainedModel {
        assert!(
            graphs.iter().all(|g| g.runtime_secs.is_some()),
            "all training graphs must carry runtime labels"
        );
        let cfg = &self.training_config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Split into train / validation by index (graphs from the same
        // database are contiguous in collection order, so a tail split
        // approximates a database-level holdout).
        let val_len = ((graphs.len() as f64) * cfg.validation_fraction) as usize;
        let (train_graphs, val_graphs) = graphs.split_at(graphs.len() - val_len);

        let mut model = ZeroShotCostModel::new(self.model_config);
        let mut adam = Adam::new(cfg.learning_rate);
        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();
        let mut training_curve = Vec::with_capacity(cfg.epochs);

        for _epoch in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut batch_count = 0usize;
            model.zero_grad();
            for &i in &indices {
                let g = &train_graphs[i];
                model.accumulate_gradients(g, g.runtime_secs.expect("labelled"));
                batch_count += 1;
                if batch_count == cfg.batch_size {
                    model.apply_step(&mut adam);
                    model.zero_grad();
                    batch_count = 0;
                }
            }
            if batch_count > 0 {
                model.apply_step(&mut adam);
                model.zero_grad();
            }
            training_curve.push(median_q_error(&model, train_graphs));
        }

        let final_train_qerror = *training_curve.last().unwrap_or(&f64::NAN);
        let final_validation_qerror = if val_graphs.is_empty() {
            None
        } else {
            Some(median_q_error(&model, val_graphs))
        };
        TrainedModel {
            model,
            featurizer: self.featurizer,
            final_train_qerror,
            final_validation_qerror,
            training_curve,
        }
    }
}

/// Median Q-error of a model over labelled graphs.
pub fn median_q_error(model: &ZeroShotCostModel, graphs: &[PlanGraph]) -> f64 {
    let qs: Vec<f64> = graphs
        .iter()
        .filter_map(|g| g.runtime_secs.map(|rt| q_error(model.predict(g), rt)))
        .collect();
    median(&qs)
}

/// Few-shot fine-tuning: continue training an existing zero-shot model with
/// a small number of executions from the (previously unseen) target
/// database.  Returns a new `TrainedModel`; the original is not modified.
pub fn few_shot_finetune(
    trained: &TrainedModel,
    target_db: &Database,
    executions: &[QueryExecution],
    epochs: usize,
    learning_rate: f64,
) -> TrainedModel {
    let graphs: Vec<PlanGraph> = executions
        .iter()
        .map(|e| featurize_execution(target_db.catalog(), e, trained.featurizer))
        .collect();
    let mut model = trained.model.clone();
    let mut adam = Adam::new(learning_rate);
    for _ in 0..epochs {
        model.zero_grad();
        for g in &graphs {
            model.accumulate_gradients(g, g.runtime_secs.expect("labelled"));
        }
        model.apply_step(&mut adam);
    }
    let final_train_qerror = median_q_error(&model, &graphs);
    TrainedModel {
        model,
        featurizer: trained.featurizer,
        final_train_qerror,
        final_validation_qerror: None,
        training_curve: vec![final_train_qerror],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{collect_for_database, collect_training_corpus, TrainingDataConfig};
    use zsdb_catalog::presets;
    use zsdb_query::WorkloadSpec;

    fn featurized_tiny_corpus() -> Vec<PlanGraph> {
        let config = TrainingDataConfig::tiny();
        let corpus = collect_training_corpus(&config);
        // Rebuild the catalogs the corpus was generated from.
        let schemas = zsdb_catalog::SchemaGenerator::new(config.schema_config.clone())
            .generate_corpus("train", config.num_databases, config.seed);
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        trainer.featurize_corpus(&corpus, |name| {
            schemas
                .iter()
                .find(|s| s.name == name)
                .expect("catalog for corpus database")
        })
    }

    #[test]
    fn training_reduces_qerror() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        let first = trained.training_curve.first().copied().unwrap();
        let last = trained.final_train_qerror;
        assert!(last < first, "q-error should improve: {first} -> {last}");
        assert!(last < 2.5, "final training q-error too high: {last}");
    }

    #[test]
    fn trained_model_generalizes_to_unseen_database() {
        // Train on the tiny synthetic corpus, evaluate on the IMDB-like
        // database the model has never seen.  Zero-shot predictions should
        // be far better than a naive constant predictor.
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);

        let imdb = Database::generate(presets::imdb_like(0.02), 42);
        let eval_execs = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 30, 77);
        let eval_graphs: Vec<PlanGraph> = eval_execs
            .iter()
            .map(|e| featurize_execution(imdb.catalog(), e, trained.featurizer))
            .collect();
        let zero_shot_q = median_q_error(&trained.model, &eval_graphs);

        // Naive baseline: always predict the mean training runtime.
        let mean_runtime =
            graphs.iter().filter_map(|g| g.runtime_secs).sum::<f64>() / graphs.len() as f64;
        let naive_q = median(
            &eval_execs
                .iter()
                .map(|e| q_error(mean_runtime, e.runtime_secs))
                .collect::<Vec<_>>(),
        );
        assert!(
            zero_shot_q < naive_q,
            "zero-shot {zero_shot_q} should beat naive {naive_q}"
        );
        assert!(zero_shot_q < 5.0, "zero-shot median q-error {zero_shot_q}");
    }

    #[test]
    fn few_shot_improves_on_target_database() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);

        let imdb = Database::generate(presets::imdb_like(0.02), 42);
        let target_execs = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 40, 5);
        let (finetune_set, holdout) = target_execs.split_at(25);

        let holdout_graphs: Vec<PlanGraph> = holdout
            .iter()
            .map(|e| featurize_execution(imdb.catalog(), e, trained.featurizer))
            .collect();
        let before = median_q_error(&trained.model, &holdout_graphs);
        let finetuned = few_shot_finetune(&trained, &imdb, finetune_set, 30, 3e-4);
        let after = median_q_error(&finetuned.model, &holdout_graphs);
        assert!(
            after <= before * 1.15,
            "few-shot should not make things much worse: {before} -> {after}"
        );
    }

    #[test]
    fn trained_model_serialization_roundtrip() {
        let graphs = featurized_tiny_corpus();
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig {
                epochs: 2,
                ..TrainingConfig::tiny()
            },
            FeaturizerConfig::exact(),
        );
        let trained = trainer.train(&graphs);
        let json = trained.to_json();
        let restored = TrainedModel::from_json(&json).unwrap();
        assert!((restored.predict(&graphs[0]) - trained.predict(&graphs[0])).abs() < 1e-9);
    }
}
