//! A reusable bump arena for plan-graph construction.
//!
//! Featurizing a plan allocates one [`GraphNode`] per operator, table,
//! column, predicate and aggregation — plus a feature `Vec` and a child
//! `Vec` inside each node, plus the dedup hash maps of the builder.  On
//! the serving hot path that is dozens of heap allocations per request
//! for buffers whose sizes repeat almost exactly from plan to plan.
//!
//! [`GraphArena`] turns all of that into pooled reuse: recycled graphs
//! donate their nodes back to the arena, nodes are *cleared* (capacity
//! retained) rather than dropped, and the dedup maps live in the arena
//! so their tables survive across requests.  After a short warm-up —
//! once every pooled buffer has grown to the workload's high-water mark —
//! [`featurize_plan_into`](crate::features::featurize_plan_into) and
//! [`featurize_execution_into`](crate::features::featurize_execution_into)
//! perform **zero heap allocations**, the property the allocation-
//! regression test pins.
//!
//! The arena never changes *what* is built: an arena-built graph is
//! equal (`==`, and therefore bit-identical in every feature) to the
//! graph the allocating [`featurize_plan`](crate::features::featurize_plan)
//! produces.

use crate::features::{GraphNode, NodeKind, PlanGraph};
use std::collections::HashMap;
use zsdb_catalog::{ColumnRef, TableId};

/// Pooled storage for plan-graph construction: spare nodes, spare graph
/// shells and the featurizer's dedup maps.
///
/// One arena per worker thread is the intended pattern (the sharded
/// prediction server owns one per shard); the arena is cheap when cold
/// and allocation-free when warm.
#[derive(Debug, Default)]
pub struct GraphArena {
    /// Cleared nodes ready for reuse (feature/child capacity retained).
    spare_nodes: Vec<GraphNode>,
    /// Cleared graph shells ready for reuse (node capacity retained).
    spare_graphs: Vec<PlanGraph>,
    /// Dedup map: table → node index, cleared per graph build.
    pub(crate) table_nodes: HashMap<TableId, usize>,
    /// Dedup map: column → node index, cleared per graph build.
    pub(crate) column_nodes: HashMap<ColumnRef, usize>,
}

impl GraphArena {
    /// An empty arena.
    pub fn new() -> Self {
        GraphArena::default()
    }

    /// Number of pooled spare nodes (test/observability hook).
    pub fn pooled_nodes(&self) -> usize {
        self.spare_nodes.len()
    }

    /// Take a recycled graph shell (or a fresh empty one).  The shell's
    /// `nodes` vector is empty but retains its previous capacity.
    pub fn take_graph(&mut self) -> PlanGraph {
        self.spare_graphs.pop().unwrap_or(PlanGraph {
            nodes: Vec::new(),
            root: 0,
            runtime_secs: None,
        })
    }

    /// Return a graph to the arena: its nodes are cleared into the spare
    /// pool and the shell joins the spare-graph pool.
    pub fn recycle(&mut self, mut graph: PlanGraph) {
        self.reclaim_nodes(&mut graph);
        self.spare_graphs.push(graph);
    }

    /// Drain `graph.nodes` into the spare-node pool (clearing each node's
    /// buffers, retaining their capacity) and reset the dedup maps —
    /// called at the start of every `featurize_*_into` build so the
    /// target graph can be rebuilt in place.
    pub(crate) fn reclaim_nodes(&mut self, graph: &mut PlanGraph) {
        for mut node in graph.nodes.drain(..) {
            node.features.clear();
            node.children.clear();
            self.spare_nodes.push(node);
        }
        graph.root = 0;
        graph.runtime_secs = None;
        self.table_nodes.clear();
        self.column_nodes.clear();
    }

    /// Take a cleared node of the given kind from the pool (or a fresh
    /// one).  `features` and `children` are empty but keep the capacity
    /// of whatever node they last served.
    pub(crate) fn take_node(&mut self, kind: NodeKind) -> GraphNode {
        match self.spare_nodes.pop() {
            Some(mut node) => {
                node.kind = kind;
                debug_assert!(node.features.is_empty() && node.children.is_empty());
                node
            }
            None => GraphNode {
                kind,
                features: Vec::new(),
                children: Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_nodes_are_reused() {
        let mut arena = GraphArena::new();
        assert_eq!(arena.pooled_nodes(), 0);
        let mut graph = arena.take_graph();
        graph.nodes.push(GraphNode {
            kind: NodeKind::Table,
            features: vec![1.0; 19],
            children: Vec::new(),
        });
        graph.nodes.push(GraphNode {
            kind: NodeKind::PlanOperator,
            features: vec![2.0; 8],
            children: vec![0],
        });
        arena.recycle(graph);
        assert_eq!(arena.pooled_nodes(), 2);

        let node = arena.take_node(NodeKind::Column);
        assert_eq!(node.kind, NodeKind::Column);
        assert!(node.features.is_empty());
        assert!(node.features.capacity() >= 8);
        assert_eq!(arena.pooled_nodes(), 1);
    }

    #[test]
    fn take_graph_reuses_recycled_shells() {
        let mut arena = GraphArena::new();
        let mut g = arena.take_graph();
        g.nodes.reserve(64);
        let cap = g.nodes.capacity();
        arena.recycle(g);
        let g2 = arena.take_graph();
        assert!(g2.nodes.is_empty());
        assert_eq!(g2.nodes.capacity(), cap);
    }
}
