//! What-if index cost estimation on unseen databases (paper §4.1).
//!
//! The zero-shot model is asked: "how long would this query run *if* an
//! index on column X existed?"  The plan is produced by the optimizer with
//! a hypothetical index (nothing is built), featurized with estimated
//! cardinalities (the query has not been executed) and fed to the trained
//! model.  Ground truth for evaluation comes from
//! [`zsdb_engine::WhatIfPlanner::ground_truth_with_index`], which builds
//! the index temporarily and really executes the query.

use crate::features::featurize_plan;
use crate::train::TrainedModel;
use zsdb_catalog::ColumnRef;
use zsdb_engine::WhatIfPlanner;
use zsdb_query::Query;
use zsdb_storage::Database;

/// Zero-shot what-if estimator over one (unseen) database.
pub struct WhatIfCostEstimator<'a> {
    model: &'a TrainedModel,
    planner: WhatIfPlanner,
}

impl<'a> WhatIfCostEstimator<'a> {
    /// Create a what-if estimator from a trained zero-shot model.
    pub fn new(model: &'a TrainedModel) -> Self {
        WhatIfCostEstimator {
            model,
            planner: WhatIfPlanner::with_defaults(),
        }
    }

    /// Predict the runtime (seconds) of `query` on `db` under the
    /// hypothesis that an index on `column` exists.
    pub fn predict_with_index(&self, db: &Database, query: &Query, column: ColumnRef) -> f64 {
        let plan = self.planner.plan_with_index(db, query, column);
        let graph = featurize_plan(db.catalog(), &plan, self.model.featurizer);
        self.model.predict(&graph)
    }

    /// Predict the runtime of `query` on `db` as-is (no hypothetical
    /// index); useful to estimate the *benefit* of an index.
    pub fn predict_without_index(&self, db: &Database, query: &Query) -> f64 {
        let runner = zsdb_engine::QueryRunner::with_defaults(db);
        let plan = runner.plan(query);
        let graph = featurize_plan(db.catalog(), &plan, self.model.featurizer);
        self.model.predict(&graph)
    }

    /// Predicted speed-up factor of creating an index on `column` for
    /// `query` (`> 1` means the index is predicted to help).
    pub fn predicted_speedup(&self, db: &Database, query: &Query, column: ColumnRef) -> f64 {
        let without = self.predict_without_index(db, query).max(1e-9);
        let with = self.predict_with_index(db, query, column).max(1e-9);
        without / with
    }

    /// Access the underlying what-if planner (e.g. for ground-truth
    /// collection with the same configuration).
    pub fn planner(&self) -> &WhatIfPlanner {
        &self.planner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{collect_training_corpus, TrainingDataConfig};
    use crate::features::FeaturizerConfig;
    use crate::model::ModelConfig;
    use crate::train::{Trainer, TrainingConfig};
    use zsdb_catalog::{presets, SchemaGenerator, Value};
    use zsdb_query::{Aggregate, CmpOp, Predicate};

    fn quickly_trained_model() -> TrainedModel {
        let config = TrainingDataConfig {
            random_indexes_per_database: 2,
            ..TrainingDataConfig::tiny()
        };
        let corpus = collect_training_corpus(&config);
        let schemas = SchemaGenerator::new(config.schema_config.clone()).generate_corpus(
            "train",
            config.num_databases,
            config.seed,
        );
        let trainer = Trainer::new(
            ModelConfig::tiny(),
            TrainingConfig::tiny(),
            FeaturizerConfig::estimated(),
        );
        let graphs = trainer.featurize_corpus(&corpus, |name| {
            schemas.iter().find(|s| s.name == name).expect("catalog")
        });
        trainer.train(&graphs)
    }

    #[test]
    fn whatif_predictions_are_positive_and_react_to_indexes() {
        let trained = quickly_trained_model();
        let estimator = WhatIfCostEstimator::new(&trained);
        let db = Database::generate(presets::imdb_like(0.02), 21);
        let catalog = db.catalog();
        let (title, _) = catalog.table_by_name("title").unwrap();
        let year = catalog.resolve_column("title", "production_year").unwrap();
        let query = Query {
            tables: vec![title],
            joins: vec![],
            predicates: vec![Predicate::new(year, CmpOp::Eq, Value::Int(2019))],
            aggregates: vec![Aggregate::count_star()],
        };
        let with = estimator.predict_with_index(&db, &query, year);
        let without = estimator.predict_without_index(&db, &query);
        assert!(with > 0.0 && without > 0.0);
        // The two predictions come from different physical plans, so they
        // should generally differ.
        assert_ne!(with, without);
        assert!(estimator.predicted_speedup(&db, &query, year) > 0.0);
    }
}
