//! Batched execution of the shared plan-graph encoder over mini-batches of
//! plan graphs.
//!
//! The per-example path walks one DAG at a time, calling the encoder and
//! combine MLPs once **per node** — thousands of tiny mat-vec products and
//! heap allocations per training step.  This module restructures the same
//! computation around a [`BatchSchedule`]: all nodes of a mini-batch are
//! grouped by *(topological level, [`NodeKind`])*, and each group is
//! pushed through the node-type encoder and the combine MLP in **one
//! batched call** — one fused matrix loop per (level, kind) instead of one
//! mat-vec per node.
//!
//! The batched message passing is implemented on [`PlanEncoder`], the
//! task-independent half of every zero-shot model: it produces one hidden
//! state per node ([`NodeStates`]), and any number of task heads can read
//! those states and push gradients back through
//! [`PlanEncoder::backward_batch`].  The single-head
//! [`ZeroShotCostModel`] composes exactly these primitives; the
//! multi-task model (`zsdb_multitask`) attaches several heads to the same
//! encoder pass.
//!
//! Bit-consistency: the batched MLP loops in `zsdb_nn` perform, per
//! example, exactly the floating-point operations of the per-example path
//! in exactly the same order, and the DeepSets child-state sums below add
//! children in the same `node.children` order as
//! [`ZeroShotCostModel::predict_log_with`].  Batched predictions are
//! therefore **bit-identical** to per-example predictions — the guarantee
//! the serving layer and the equivalence tests rely on.
//!
//! Gradient accumulation in [`ZeroShotCostModel::accumulate_gradients_batch`]
//! uses a fixed reduction order (groups in reverse schedule order, examples
//! ascending), so batched training is deterministic; it is *not* required
//! to be bit-identical to per-example gradient accumulation (the summation
//! order across examples necessarily differs).

use crate::features::{NodeKind, PlanGraph};
use crate::model::{PlanEncoder, ZeroShotCostModel};
use zsdb_nn::{Batch, BatchForwardScratch, MlpBatchCache};

/// One batched unit of work: all nodes of one [`NodeKind`] at one
/// topological level, across every graph of the mini-batch.
#[derive(Default)]
struct KindGroup {
    /// Index into [`NodeKind::ALL`] — selects the encoder MLP.
    kind: usize,
    /// Member nodes as `(graph index, node index)` in ascending order.
    members: Vec<(usize, usize)>,
    /// CSR offsets into `children`: the children of member `e` are
    /// `children[child_offsets[e]..child_offsets[e + 1]]`.
    child_offsets: Vec<usize>,
    /// Flat-node-id children of all members, concatenated in the graphs'
    /// own `node.children` order (the DeepSets summation order).
    children: Vec<usize>,
}

/// A batched execution plan for a mini-batch of plan graphs: nodes grouped
/// by *(topological level, node kind)*, levels ascending, so every group
/// only depends on states produced by earlier groups.
///
/// A schedule is **reusable**: [`BatchSchedule::rebuild`] re-derives the
/// grouping for a new mini-batch while recycling every internal buffer
/// (groups, member lists, CSR children, bucketing scratch), so a
/// long-lived schedule makes repeated scheduling allocation-free once the
/// buffers have grown to the workload's high-water mark.
#[derive(Default)]
pub struct BatchSchedule {
    /// Groups in execution order.
    groups: Vec<KindGroup>,
    /// Flat node id of each graph's root.
    roots: Vec<usize>,
    /// Flat-node-id offset of each graph: node `(gi, ni)` has flat id
    /// `offsets[gi] + ni`.
    offsets: Vec<usize>,
    /// Total number of nodes across the mini-batch.
    total_nodes: usize,
    /// Reusable build scratch: topological level per flat node.
    level: Vec<usize>,
    /// Reusable build scratch: `(level, kind)` buckets.
    buckets: Vec<Vec<(usize, usize)>>,
    /// Recycled groups (member/children capacity retained).
    spare_groups: Vec<KindGroup>,
}

impl BatchSchedule {
    /// An empty schedule, ready for [`BatchSchedule::rebuild`].
    pub fn empty() -> Self {
        BatchSchedule::default()
    }

    /// Build the schedule for a mini-batch.
    ///
    /// Runs in `O(nodes + edges)`: one pass to compute topological levels
    /// (children always precede parents in a `PlanGraph`), one pass to
    /// bucket nodes by `(level, kind)`.
    pub fn build(graphs: &[&PlanGraph]) -> Self {
        let mut schedule = BatchSchedule::empty();
        schedule.rebuild(graphs);
        schedule
    }

    /// Rebuild this schedule in place for a new mini-batch, reusing every
    /// internal buffer.  Produces exactly the grouping of
    /// [`BatchSchedule::build`].
    pub fn rebuild(&mut self, graphs: &[&PlanGraph]) {
        // Recycle the previous build: groups keep their buffers, buckets
        // keep their capacity.
        for mut g in self.groups.drain(..) {
            g.members.clear();
            g.child_offsets.clear();
            g.children.clear();
            self.spare_groups.push(g);
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.roots.clear();
        self.offsets.clear();

        let mut total_nodes = 0usize;
        for g in graphs {
            self.offsets.push(total_nodes);
            total_nodes += g.len();
        }
        self.total_nodes = total_nodes;

        // Topological level per flat node: leaves at 0, parents one above
        // their deepest child.
        self.level.clear();
        self.level.resize(total_nodes, 0);
        let mut max_level = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            let base = self.offsets[gi];
            for (ni, node) in g.nodes.iter().enumerate() {
                let l = node
                    .children
                    .iter()
                    .map(|&c| self.level[base + c] + 1)
                    .max()
                    .unwrap_or(0);
                self.level[base + ni] = l;
                max_level = max_level.max(l);
            }
        }

        // Bucket by (level, kind) in deterministic (level, kind, graph,
        // node) order.
        let num_kinds = NodeKind::ALL.len();
        let num_buckets = (max_level + 1) * num_kinds;
        while self.buckets.len() < num_buckets {
            self.buckets.push(Vec::new());
        }
        for (gi, g) in graphs.iter().enumerate() {
            let base = self.offsets[gi];
            for (ni, node) in g.nodes.iter().enumerate() {
                self.buckets[self.level[base + ni] * num_kinds + node.kind.index()].push((gi, ni));
            }
        }

        for l in 0..=max_level {
            for k in 0..num_kinds {
                // Swap the bucket out so a recycled group can be filled
                // while the bucket slot stays addressable; swapped back
                // (cleared, capacity kept) afterwards.
                let members = std::mem::take(&mut self.buckets[l * num_kinds + k]);
                if members.is_empty() {
                    self.buckets[l * num_kinds + k] = members;
                    continue;
                }
                let mut group = self.spare_groups.pop().unwrap_or_default();
                group.kind = k;
                group.members.extend_from_slice(&members);
                group.child_offsets.push(0);
                for &(gi, ni) in &group.members {
                    let base = self.offsets[gi];
                    for &c in &graphs[gi].nodes[ni].children {
                        group.children.push(base + c);
                    }
                    group.child_offsets.push(group.children.len());
                }
                self.groups.push(group);
                let mut bucket = members;
                bucket.clear();
                self.buckets[l * num_kinds + k] = bucket;
            }
        }

        for (gi, g) in graphs.iter().enumerate() {
            self.roots.push(self.offsets[gi] + g.root);
        }
    }

    /// Number of (level, kind) groups — i.e. batched MLP invocations per
    /// encoder/combine stage.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of nodes across the mini-batch.
    pub fn num_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Flat node id of each graph's root, in graph order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Flat-node-id offset of each graph: node `ni` of graph `gi` has flat
    /// id `offsets()[gi] + ni`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Node-major storage of one hidden vector per flat node:
/// `data[flat * hidden..]` is node `flat`'s state — contiguous, so the
/// DeepSets child-state sums and their backward counterparts are
/// vectorised adds over whole rows.
///
/// Task heads consume states through [`NodeStates::gather`] (rows →
/// feature-major [`Batch`]) and push gradients back through
/// [`NodeStates::scatter_add`] before handing the accumulated per-node
/// gradients to [`PlanEncoder::backward_batch`].
#[derive(Default)]
pub struct NodeStates {
    data: Vec<f64>,
    hidden: usize,
}

impl NodeStates {
    /// All-zero states for `total` nodes of dimension `hidden`.
    pub fn zeros(hidden: usize, total: usize) -> Self {
        NodeStates {
            data: vec![0.0; hidden * total],
            hidden,
        }
    }

    /// Reshape to `total` zeroed rows of dimension `hidden`, reusing the
    /// existing allocation (grown to the high-water mark, never shrunk).
    pub fn resize(&mut self, hidden: usize, total: usize) {
        self.hidden = hidden;
        self.data.clear();
        self.data.resize(hidden * total, 0.0);
    }

    /// State dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of node rows.
    pub fn num_nodes(&self) -> usize {
        self.data.len().checked_div(self.hidden).unwrap_or(0)
    }

    /// The state row of flat node `flat`.
    #[inline]
    pub fn row(&self, flat: usize) -> &[f64] {
        &self.data[flat * self.hidden..(flat + 1) * self.hidden]
    }

    /// Mutable state row of flat node `flat`.
    #[inline]
    pub fn row_mut(&mut self, flat: usize) -> &mut [f64] {
        &mut self.data[flat * self.hidden..(flat + 1) * self.hidden]
    }

    /// Gather the rows of `flats` into a feature-major batch (column `e`
    /// is the state of `flats[e]`) — the input layout of a task-head MLP.
    pub fn gather(&self, flats: &[usize]) -> Batch {
        let mut batch = Batch::default();
        self.gather_into(flats, &mut batch);
        batch
    }

    /// [`NodeStates::gather`] into a reusable batch (allocation-free once
    /// `out` has grown to the high-water mark).
    pub fn gather_into(&self, flats: &[usize], out: &mut Batch) {
        out.resize(self.hidden, flats.len());
        for (e, &flat) in flats.iter().enumerate() {
            for (f, &v) in self.row(flat).iter().enumerate() {
                out.set(f, e, v);
            }
        }
    }

    /// Add column `e` of `grads` onto the row of `flats[e]` for every
    /// member — how a task head deposits its state gradients (columns in
    /// ascending example order, so accumulation is deterministic).
    pub fn scatter_add(&mut self, flats: &[usize], grads: &Batch) {
        for (e, &flat) in flats.iter().enumerate() {
            let row = self.row_mut(flat);
            for (f, d) in row.iter_mut().enumerate() {
                *d += grads.get(f, e);
            }
        }
    }
}

/// Per-group backprop caches recorded by
/// [`PlanEncoder::encode_batch_cached`], consumed (by reference) by
/// [`PlanEncoder::backward_batch`].
pub struct EncoderTrace {
    groups: Vec<GroupTrace>,
}

/// Per-group backprop caches recorded by the batched forward pass.
struct GroupTrace {
    enc_cache: MlpBatchCache,
    combine_cache: MlpBatchCache,
}

/// Reusable buffers for allocation-free batched encoding
/// ([`PlanEncoder::encode_batch_into`],
/// [`ZeroShotCostModel::predict_log_scheduled_into`]).
///
/// Every buffer grows to the workload's high-water mark and is never
/// shrunk, so a long-lived scratch makes repeated batched inference
/// allocation-free after warm-up — the batched counterpart of
/// [`crate::model::InferenceScratch`].
#[derive(Default)]
pub struct EncodeScratch {
    /// Per-group feature batch.
    features: Batch,
    /// Ping-pong batches for the encoder MLPs.
    enc_fwd: BatchForwardScratch,
    /// Per-group `[encoding ‖ child sum]` combine input.
    combine_in: Batch,
    /// Ping-pong batches for the combine MLP.
    combine_fwd: BatchForwardScratch,
    /// Node-major child-sum accumulator (`h × group members`).
    sums: Vec<f64>,
    /// The encoded node states (output of the pass).
    states: NodeStates,
    /// Root states gathered for the output head.
    root_states: Batch,
    /// Ping-pong batches for the output MLP.
    out_fwd: BatchForwardScratch,
}

impl EncodeScratch {
    /// The node states produced by the last
    /// [`PlanEncoder::encode_batch_into`] pass.
    pub fn states(&self) -> &NodeStates {
        &self.states
    }
}

impl PlanEncoder {
    /// Gather the feature vectors of a group into a reusable batch.
    fn group_features_into(&self, graphs: &[&PlanGraph], group: &KindGroup, out: &mut Batch) {
        let dim = NodeKind::ALL[group.kind].feature_dim();
        out.resize(dim, group.members.len());
        for (e, &(gi, ni)) in group.members.iter().enumerate() {
            out.set_example(e, &graphs[gi].nodes[ni].features);
        }
    }

    /// Assemble the combine-MLP input of a group: `[encoder output ‖ sum
    /// of child states]`, with children summed in `node.children` order
    /// (the same element-wise order as the per-example path).
    ///
    /// Child states are accumulated into contiguous node-major rows
    /// (vectorised adds over the whole hidden vector per edge), then
    /// transposed once into the feature-major MLP input.  `sums` and the
    /// output batch are caller-provided reusable buffers.
    fn group_combine_input_into(
        &self,
        group: &KindGroup,
        enc_out: &Batch,
        states: &NodeStates,
        sums: &mut Vec<f64>,
        combine_in: &mut Batch,
    ) {
        let h = self.hidden_dim;
        let n = group.members.len();
        combine_in.resize(2 * h, n);
        combine_in.copy_rows_from(0, enc_out, h);
        sums.clear();
        sums.resize(h * n, 0.0);
        for e in 0..n {
            let row = &mut sums[e * h..(e + 1) * h];
            for &c in &group.children[group.child_offsets[e]..group.child_offsets[e + 1]] {
                for (s, v) in row.iter_mut().zip(states.row(c)) {
                    *s += v;
                }
            }
        }
        for f in 0..h {
            let dst = combine_in.feature_row_mut(h + f);
            for (e, d) in dst.iter_mut().enumerate() {
                *d = sums[e * h + f];
            }
        }
    }

    /// Scatter a group's combine output columns back into the node-major
    /// state storage (one transpose pass per group).
    fn scatter_group_states(
        &self,
        group: &KindGroup,
        offsets: &[usize],
        out: &Batch,
        states: &mut NodeStates,
    ) {
        for e in 0..group.members.len() {
            let (gi, ni) = group.members[e];
            let row = states.row_mut(offsets[gi] + ni);
            for (f, s) in row.iter_mut().enumerate() {
                *s = out.get(f, e);
            }
        }
    }

    /// Batched encoder forward: one hidden state per node, no backprop
    /// caches (the inference path).  Bit-identical per node to the
    /// per-example message passing.
    pub fn encode_batch(&self, graphs: &[&PlanGraph], schedule: &BatchSchedule) -> NodeStates {
        let mut scratch = EncodeScratch::default();
        self.encode_batch_into(graphs, schedule, &mut scratch);
        scratch.states
    }

    /// [`PlanEncoder::encode_batch`] into reusable scratch buffers: the
    /// states land in `scratch.states()` and every intermediate batch is
    /// recycled, so warm calls perform zero heap allocations.
    /// Bit-identical to [`PlanEncoder::encode_batch`].
    pub fn encode_batch_into(
        &self,
        graphs: &[&PlanGraph],
        schedule: &BatchSchedule,
        scratch: &mut EncodeScratch,
    ) {
        scratch.states.resize(self.hidden_dim, schedule.total_nodes);
        for group in &schedule.groups {
            self.group_features_into(graphs, group, &mut scratch.features);
            let enc_out = self.encoders[group.kind]
                .forward_batch_into(&scratch.features, &mut scratch.enc_fwd);
            self.group_combine_input_into(
                group,
                enc_out,
                &scratch.states,
                &mut scratch.sums,
                &mut scratch.combine_in,
            );
            let out = self
                .combine
                .forward_batch_into(&scratch.combine_in, &mut scratch.combine_fwd);
            self.scatter_group_states(group, &schedule.offsets, out, &mut scratch.states);
        }
    }

    /// Batched encoder forward with per-group backprop caches (the
    /// training path).  States are bit-identical to
    /// [`PlanEncoder::encode_batch`].
    pub fn encode_batch_cached(
        &self,
        graphs: &[&PlanGraph],
        schedule: &BatchSchedule,
    ) -> (NodeStates, EncoderTrace) {
        let mut states = NodeStates::zeros(self.hidden_dim, schedule.total_nodes);
        let mut traces = Vec::with_capacity(schedule.groups.len());
        let mut sums = Vec::new();
        for group in &schedule.groups {
            let mut features = Batch::default();
            self.group_features_into(graphs, group, &mut features);
            let (enc_out, enc_cache) = self.encoders[group.kind].forward_batch_cached(features);
            let mut combine_in = Batch::default();
            self.group_combine_input_into(group, &enc_out, &states, &mut sums, &mut combine_in);
            let (out, combine_cache) = self.combine.forward_batch_cached(combine_in);
            self.scatter_group_states(group, &schedule.offsets, &out, &mut states);
            traces.push(GroupTrace {
                enc_cache,
                combine_cache,
            });
        }
        (states, EncoderTrace { groups: traces })
    }

    /// Backpropagate per-node state gradients (accumulated by one or more
    /// task heads via [`NodeStates::scatter_add`]) through the message
    /// passing, *accumulating* encoder parameter gradients.
    ///
    /// The reduction order is fixed — groups in reverse schedule order,
    /// examples ascending within a group — making the accumulated
    /// gradients a deterministic function of the input.
    pub fn backward_batch(
        &mut self,
        schedule: &BatchSchedule,
        trace: &EncoderTrace,
        mut d_states: NodeStates,
    ) {
        let h = self.hidden_dim;
        for (group, trace) in schedule.groups.iter().zip(&trace.groups).rev() {
            let n = group.members.len();
            let mut d_out = Batch::zeros(h, n);
            for e in 0..n {
                let (gi, ni) = group.members[e];
                let flat = schedule.offsets[gi] + ni;
                for (f, &v) in d_states.row(flat).iter().enumerate() {
                    d_out.set(f, e, v);
                }
            }
            let d_combine_in = self.combine.backward_batch(&trace.combine_cache, &d_out);
            let d_enc = d_combine_in.sub_rows(0, h);
            self.encoders[group.kind].backward_batch(&trace.enc_cache, &d_enc);
            // Sum pooling: every child receives the parent's child-sum
            // gradient.  Transpose the child-sum half once into node-major
            // rows, then add whole rows per edge (vectorised).
            let mut d_sums = vec![0.0f64; h * n];
            for f in 0..h {
                for (e, &g) in d_combine_in.feature_row(h + f).iter().enumerate() {
                    d_sums[e * h + f] = g;
                }
            }
            for e in 0..n {
                let src = &d_sums[e * h..(e + 1) * h];
                for &c in &group.children[group.child_offsets[e]..group.child_offsets[e + 1]] {
                    for (d, &g) in d_states.row_mut(c).iter_mut().zip(src) {
                        *d += g;
                    }
                }
            }
        }
    }
}

/// Result of one batched gradient-accumulation pass.
pub struct BatchBackprop {
    /// Summed squared error on `ln(runtime)` over the mini-batch (same
    /// convention as per-example [`ZeroShotCostModel::accumulate_gradients`]).
    pub loss: f64,
    /// Per-graph runtime predictions (seconds) from the training forward
    /// pass, bit-identical to [`ZeroShotCostModel::predict`] under the
    /// pre-step weights.  Lets trainers track a running training metric
    /// without a separate evaluation pass.
    pub predictions: Vec<f64>,
}

impl ZeroShotCostModel {
    /// Batched log-runtime prediction over a mini-batch of graphs,
    /// **bit-identical** per graph to
    /// [`ZeroShotCostModel::predict_log`].
    pub fn predict_log_batch(&self, graphs: &[&PlanGraph]) -> Vec<f64> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let schedule = BatchSchedule::build(graphs);
        self.predict_log_scheduled(graphs, &schedule)
    }

    /// Batched log-runtime prediction with a prebuilt schedule (callers
    /// that reuse the same mini-batch composition can amortise the
    /// schedule).
    pub fn predict_log_scheduled(
        &self,
        graphs: &[&PlanGraph],
        schedule: &BatchSchedule,
    ) -> Vec<f64> {
        let mut scratch = EncodeScratch::default();
        let mut out = Vec::new();
        self.predict_log_scheduled_into(graphs, schedule, &mut scratch, &mut out);
        out
    }

    /// [`ZeroShotCostModel::predict_log_scheduled`] through reusable
    /// scratch buffers: predictions are written into `out` (cleared
    /// first).  With a warm [`EncodeScratch`], a rebuilt
    /// [`BatchSchedule`] and a pre-grown `out`, the whole batched
    /// inference pass performs zero heap allocations.  Bit-identical to
    /// the allocating variant.
    pub fn predict_log_scheduled_into(
        &self,
        graphs: &[&PlanGraph],
        schedule: &BatchSchedule,
        scratch: &mut EncodeScratch,
        out: &mut Vec<f64>,
    ) {
        self.encoder.encode_batch_into(graphs, schedule, scratch);
        scratch
            .states
            .gather_into(schedule.roots(), &mut scratch.root_states);
        let pred = self
            .output
            .forward_batch_into(&scratch.root_states, &mut scratch.out_fwd);
        out.clear();
        out.extend_from_slice(pred.feature_row(0));
    }

    /// Batched runtime prediction (seconds), bit-identical per graph to
    /// [`ZeroShotCostModel::predict`].
    pub fn predict_batch(&self, graphs: &[&PlanGraph]) -> Vec<f64> {
        self.predict_log_batch(graphs)
            .into_iter()
            .map(f64::exp)
            .collect()
    }

    /// Batched training step contribution: forward the whole mini-batch,
    /// compute the squared error on `ln(runtime)` per graph, backpropagate
    /// and **accumulate** gradients (no optimizer step).  Returns the
    /// summed squared error — the same loss convention as calling
    /// [`ZeroShotCostModel::accumulate_gradients`] per graph.
    ///
    /// The gradient reduction order is fixed (groups in reverse schedule
    /// order, examples ascending within a group), making the accumulated
    /// gradients a deterministic function of the mini-batch content.
    pub fn accumulate_gradients_batch(
        &mut self,
        graphs: &[&PlanGraph],
        targets: &[f64],
    ) -> BatchBackprop {
        assert_eq!(graphs.len(), targets.len());
        if graphs.is_empty() {
            return BatchBackprop {
                loss: 0.0,
                predictions: Vec::new(),
            };
        }
        let h = self.config.hidden_dim;
        let schedule = BatchSchedule::build(graphs);

        // ---- Forward with caches -------------------------------------
        let (states, trace) = self.encoder.encode_batch_cached(graphs, &schedule);
        let root_states = states.gather(schedule.roots());
        let (out, output_cache) = self.output.forward_batch_cached(root_states);

        // ---- Loss ----------------------------------------------------
        let n_graphs = graphs.len();
        let mut loss = 0.0;
        let mut predictions = Vec::with_capacity(n_graphs);
        let mut d_pred = Batch::zeros(1, n_graphs);
        for (e, t) in targets.iter().enumerate() {
            let target = t.max(1e-9).ln();
            let log_pred = out.get(0, e);
            predictions.push(log_pred.exp());
            let error = log_pred - target;
            loss += error * error;
            d_pred.set(0, e, 2.0 * error);
        }

        // ---- Backward ------------------------------------------------
        let d_root = self.output.backward_batch(&output_cache, &d_pred);
        let mut d_states = NodeStates::zeros(h, schedule.num_nodes());
        d_states.scatter_add(schedule.roots(), &d_root);
        self.encoder.backward_batch(&schedule, &trace, d_states);
        BatchBackprop { loss, predictions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{featurize_execution, FeaturizerConfig};
    use crate::model::ModelConfig;
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn graphs() -> Vec<PlanGraph> {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 24, 1);
        runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
            .collect()
    }

    #[test]
    fn schedule_levels_respect_dependencies() {
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().collect();
        let schedule = BatchSchedule::build(&refs);
        assert_eq!(
            schedule.num_nodes(),
            graphs.iter().map(|g| g.len()).sum::<usize>()
        );
        // Every node appears exactly once across all groups, and every
        // child has been scheduled in an earlier group than its parent.
        let mut seen = vec![false; schedule.num_nodes()];
        let offsets = schedule.offsets();
        for group in &schedule.groups {
            for (e, &(gi, ni)) in group.members.iter().enumerate() {
                let flat = offsets[gi] + ni;
                assert!(!seen[flat], "node scheduled twice");
                for &c in &group.children[group.child_offsets[e]..group.child_offsets[e + 1]] {
                    assert!(seen[c], "child {c} scheduled after parent {flat}");
                }
                assert_eq!(graphs[gi].nodes[ni].kind.index(), group.kind);
            }
            for &(gi, ni) in &group.members {
                seen[offsets[gi] + ni] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node scheduled");
    }

    #[test]
    fn batched_predictions_are_bit_identical_to_per_example_predictions() {
        let graphs = graphs();
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        for batch_len in [1, 2, 7, graphs.len()] {
            let refs: Vec<&PlanGraph> = graphs.iter().take(batch_len).collect();
            let batched = model.predict_batch(&refs);
            let batched_log = model.predict_log_batch(&refs);
            assert_eq!(batched.len(), batch_len);
            for (g, (p, lp)) in refs.iter().zip(batched.iter().zip(&batched_log)) {
                assert_eq!(p.to_bits(), model.predict(g).to_bits());
                assert_eq!(lp.to_bits(), model.predict_log(g).to_bits());
            }
        }
    }

    #[test]
    fn reused_schedule_and_scratch_are_bit_identical_to_fresh_build() {
        // One schedule + one scratch rebuilt/reused across differently
        // composed mini-batches must match fresh builds bit for bit.
        let graphs = graphs();
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        let mut schedule = BatchSchedule::empty();
        let mut scratch = EncodeScratch::default();
        let mut out = Vec::new();
        for batch_len in [7, 2, graphs.len(), 1, 5] {
            let refs: Vec<&PlanGraph> = graphs.iter().take(batch_len).collect();
            schedule.rebuild(&refs);
            model.predict_log_scheduled_into(&refs, &schedule, &mut scratch, &mut out);
            let fresh = model.predict_log_batch(&refs);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch_len {batch_len}");
            }
        }
    }

    #[test]
    fn encoder_states_match_per_example_hidden_states() {
        // The exposed NodeStates rows are exactly the per-node combined
        // hidden states the per-example path computes — the contract the
        // multi-task heads build on.
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().take(5).collect();
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        let schedule = BatchSchedule::build(&refs);
        let states = model.encoder().encode_batch(&refs, &schedule);
        // Root rows pushed through the output MLP must reproduce the
        // model's own predictions bit for bit.
        for (gi, g) in refs.iter().enumerate() {
            let flat = schedule.offsets()[gi] + g.root;
            let root = states.row(flat).to_vec();
            let out = model.output.forward(&root);
            assert_eq!(out[0].to_bits(), model.predict_log(g).to_bits());
        }
    }

    #[test]
    fn batched_gradients_match_summed_per_example_gradients() {
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().take(8).collect();
        let targets: Vec<f64> = refs.iter().map(|g| g.runtime_secs.unwrap()).collect();

        let mut per_example = ZeroShotCostModel::new(ModelConfig::tiny());
        per_example.zero_grad();
        let mut ref_loss = 0.0;
        for (g, t) in refs.iter().zip(&targets) {
            ref_loss += per_example.accumulate_gradients(g, *t);
        }
        let mut ref_grads = Vec::new();
        per_example.export_gradients(&mut ref_grads);

        let mut batched = ZeroShotCostModel::new(ModelConfig::tiny());
        batched.zero_grad();
        let backprop = batched.accumulate_gradients_batch(&refs, &targets);
        let loss = backprop.loss;
        let mut got_grads = Vec::new();
        batched.export_gradients(&mut got_grads);

        // Training-pass predictions equal inference predictions bit for
        // bit (same forward, caches aside).
        let fresh = ZeroShotCostModel::new(ModelConfig::tiny());
        for (g, p) in refs.iter().zip(&backprop.predictions) {
            assert_eq!(p.to_bits(), fresh.predict(g).to_bits());
        }

        assert!(
            (ref_loss - loss).abs() < 1e-9 * (1.0 + ref_loss.abs()),
            "loss {ref_loss} vs {loss}"
        );
        assert_eq!(ref_grads.len(), got_grads.len());
        let scale: f64 = ref_grads.iter().map(|g| g.abs()).fold(0.0, f64::max);
        for (r, g) in ref_grads.iter().zip(&got_grads) {
            assert!(
                (r - g).abs() < 1e-9 * (1.0 + scale),
                "gradient mismatch: per-example {r} vs batched {g}"
            );
        }
    }

    #[test]
    fn batched_gradient_accumulation_is_deterministic() {
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().take(6).collect();
        let targets: Vec<f64> = refs.iter().map(|g| g.runtime_secs.unwrap()).collect();
        let mut grads = Vec::new();
        for trial in 0..2 {
            let mut model = ZeroShotCostModel::new(ModelConfig::tiny());
            model.zero_grad();
            model.accumulate_gradients_batch(&refs, &targets);
            let mut flat = Vec::new();
            model.export_gradients(&mut flat);
            grads.push(flat);
            let _ = trial;
        }
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&grads[0]), bits(&grads[1]));
    }

    #[test]
    fn gradient_export_reduce_roundtrip() {
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().take(4).collect();
        let targets: Vec<f64> = refs.iter().map(|g| g.runtime_secs.unwrap()).collect();

        // Gradients computed in two shards and reduced in fixed order must
        // equal accumulating both shards into one model back-to-back, up
        // to the (associativity-free) two-term sum per parameter.
        let mut shard_a = ZeroShotCostModel::new(ModelConfig::tiny());
        let mut shard_b = ZeroShotCostModel::new(ModelConfig::tiny());
        shard_a.zero_grad();
        shard_b.zero_grad();
        shard_a.accumulate_gradients_batch(&refs[..2], &targets[..2]);
        shard_b.accumulate_gradients_batch(&refs[2..], &targets[2..]);
        let (mut flat_a, mut flat_b) = (Vec::new(), Vec::new());
        shard_a.export_gradients(&mut flat_a);
        shard_b.export_gradients(&mut flat_b);

        let mut master = ZeroShotCostModel::new(ModelConfig::tiny());
        master.zero_grad();
        master.add_gradients(&flat_a);
        master.add_gradients(&flat_b);
        let mut reduced = Vec::new();
        master.export_gradients(&mut reduced);

        let expected: Vec<f64> = flat_a.iter().zip(&flat_b).map(|(a, b)| a + b).collect();
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&reduced), bits(&expected));
    }

    #[test]
    fn copy_weights_from_synchronises_replicas() {
        let graphs = graphs();
        let refs: Vec<&PlanGraph> = graphs.iter().take(3).collect();
        let mut master = ZeroShotCostModel::new(ModelConfig::tiny());
        let mut replica = ZeroShotCostModel::new(ModelConfig {
            seed: 999,
            ..ModelConfig::tiny()
        });
        assert_ne!(
            master.predict(refs[0]).to_bits(),
            replica.predict(refs[0]).to_bits()
        );
        replica.copy_weights_from(&master);
        for g in &refs {
            assert_eq!(master.predict(g).to_bits(), replica.predict(g).to_bits());
        }
        // Train the master one step; replicas stay put until re-synced.
        let mut adam = zsdb_nn::Adam::new(1e-3);
        master.zero_grad();
        let targets: Vec<f64> = refs.iter().map(|g| g.runtime_secs.unwrap()).collect();
        master.accumulate_gradients_batch(&refs, &targets);
        master.apply_step(&mut adam);
        assert_ne!(
            master.predict(refs[0]).to_bits(),
            replica.predict(refs[0]).to_bits()
        );
        let _ = &mut replica;
    }
}
