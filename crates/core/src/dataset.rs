//! Training-data collection across many databases.
//!
//! The paper's recipe: generate (or obtain) a set of training databases,
//! run a randomized workload on each and record the executed plans with
//! their runtimes; this is a one-time effort, after which the zero-shot
//! model supports new databases without executing a single query on them.

use serde::{Deserialize, Serialize};
use zsdb_catalog::{GeneratorConfig, SchemaGenerator};
use zsdb_engine::{EngineConfig, HardwareProfile, QueryExecution, QueryRunner};
use zsdb_query::{WorkloadGenerator, WorkloadSpec};
use zsdb_storage::Database;

/// Configuration of the multi-database training-data collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingDataConfig {
    /// Number of synthetic training databases (the paper uses 19).
    pub num_databases: usize,
    /// Number of training queries executed per database (the paper uses
    /// 5,000; scaled-down defaults keep CI fast).
    pub queries_per_database: usize,
    /// Schema-generator configuration controlling database diversity.
    pub schema_config: GeneratorConfig,
    /// Workload-generator specification (joins, predicates, aggregates).
    pub workload_spec: WorkloadSpec,
    /// Whether to create a random-but-fixed set of secondary indexes per
    /// training database (enables index what-if training, paper §4.1).
    /// The value is the number of random indexes per database.
    pub random_indexes_per_database: usize,
    /// Master seed; everything else is derived deterministically.
    pub seed: u64,
}

impl Default for TrainingDataConfig {
    fn default() -> Self {
        TrainingDataConfig {
            num_databases: 19,
            queries_per_database: 5_000,
            schema_config: GeneratorConfig::default(),
            workload_spec: WorkloadSpec::paper_training(),
            random_indexes_per_database: 0,
            seed: 0x5EED,
        }
    }
}

impl TrainingDataConfig {
    /// A tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        TrainingDataConfig {
            num_databases: 3,
            queries_per_database: 80,
            schema_config: GeneratorConfig::tiny(),
            ..TrainingDataConfig::default()
        }
    }

    /// A scaled-down but representative configuration used by the
    /// benchmark harness when the full paper-scale run would be too slow.
    pub fn benchmark(num_databases: usize, queries_per_database: usize) -> Self {
        TrainingDataConfig {
            num_databases,
            queries_per_database,
            ..TrainingDataConfig::default()
        }
    }
}

/// Collect a training corpus: generate `num_databases` synthetic databases,
/// run a random workload on each and return all executions.
///
/// The executions of database `i` carry the database name `"train_{i}"`, so
/// per-database splits (e.g. holdout validation) remain possible.
pub fn collect_training_corpus(config: &TrainingDataConfig) -> Vec<QueryExecution> {
    let schema_generator = SchemaGenerator::new(config.schema_config.clone());
    let schemas = schema_generator.generate_corpus("train", config.num_databases, config.seed);
    let mut corpus = Vec::new();
    for (i, schema) in schemas.into_iter().enumerate() {
        let db_seed = config.seed.wrapping_add(1000 + i as u64);
        let mut db = Database::generate(schema, db_seed);
        if config.random_indexes_per_database > 0 {
            db.create_random_indexes(config.random_indexes_per_database, db_seed ^ 0xA5A5);
        }
        corpus.extend(collect_for_database(
            &db,
            &config.workload_spec,
            config.queries_per_database,
            db_seed ^ 0x77,
        ));
    }
    corpus
}

/// Run a random workload of `num_queries` queries on one database and
/// return the executions (used both for training databases and for
/// collecting workload-driven baselines' training data on the target
/// database).
pub fn collect_for_database(
    db: &Database,
    spec: &WorkloadSpec,
    num_queries: usize,
    seed: u64,
) -> Vec<QueryExecution> {
    let queries = WorkloadGenerator::new(spec.clone()).generate(db.catalog(), num_queries, seed);
    let runner = QueryRunner::new(db, EngineConfig::default(), HardwareProfile::default());
    runner.run_workload(&queries, seed ^ 0x1234)
}

/// Total simulated execution time of a set of executions in hours — the
/// quantity plotted in the right-most panel of the paper's Figure 3
/// ("Execution Time (h)" needed to collect the training queries).
pub fn workload_execution_hours(executions: &[QueryExecution]) -> f64 {
    executions.iter().map(|e| e.runtime_secs).sum::<f64>() / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_all_databases() {
        let config = TrainingDataConfig::tiny();
        let corpus = collect_training_corpus(&config);
        assert_eq!(
            corpus.len(),
            config.num_databases * config.queries_per_database
        );
        let mut names: Vec<&str> = corpus.iter().map(|e| e.database.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), config.num_databases);
    }

    #[test]
    fn corpus_collection_is_deterministic() {
        let config = TrainingDataConfig::tiny();
        let a = collect_training_corpus(&config);
        let b = collect_training_corpus(&config);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].runtime_secs, b[0].runtime_secs);
        assert_eq!(a[a.len() - 1].runtime_secs, b[b.len() - 1].runtime_secs);
    }

    #[test]
    fn random_indexes_produce_index_scans_in_training_data() {
        let config = TrainingDataConfig {
            random_indexes_per_database: 3,
            num_databases: 2,
            queries_per_database: 60,
            schema_config: GeneratorConfig::tiny(),
            ..TrainingDataConfig::default()
        };
        let corpus = collect_training_corpus(&config);
        let has_index_scan = corpus.iter().any(|e| {
            e.executed
                .iter()
                .iter()
                .any(|n| n.kind == zsdb_engine::PhysOperatorKind::IndexScan)
        });
        assert!(
            has_index_scan,
            "expected at least one index scan in the corpus"
        );
    }

    #[test]
    fn execution_hours_accumulate() {
        let config = TrainingDataConfig::tiny();
        let corpus = collect_training_corpus(&config);
        let hours = workload_execution_hours(&corpus);
        assert!(hours > 0.0);
        let half = workload_execution_hours(&corpus[..corpus.len() / 2]);
        assert!(half < hours);
    }
}
