//! Structural fingerprints of physical plans and featurized plan graphs.
//!
//! The serving layer caches featurized [`PlanGraph`]s keyed by a
//! fingerprint of the incoming [`PlanNode`], so repeated query shapes skip
//! re-featurization entirely.  The fingerprint therefore hashes exactly the
//! plan structure the featurizer reads (operator kinds, tables, columns,
//! predicates, aggregates, cardinality/width annotations and child order)
//! using a fixed-constant FNV-1a — **stable across processes, seeds and
//! platforms**, unlike `std`'s `DefaultHasher`, whose algorithm is not
//! guaranteed between Rust releases.

use crate::features::PlanGraph;
use zsdb_engine::{PhysOperator, PlanNode};
use zsdb_query::{Aggregate, Predicate};

/// Incremental FNV-1a (64-bit) hasher with the standard offset basis and
/// prime, specified byte-for-byte so fingerprints can be persisted.
#[derive(Debug, Clone)]
struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Fnv64 {
    fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn write_u32(&mut self, value: u32) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable structural fingerprint of a physical plan.
///
/// Two plans receive the same fingerprint exactly when the featurizer
/// would produce the same graph from them (against a fixed catalog): the
/// hash covers operator kinds and parameters, predicate/aggregate
/// structure, literal values, estimated cardinalities and output widths,
/// and the tree shape.  Optimizer cost annotations are *excluded* — they
/// never reach the feature vectors.
pub fn plan_fingerprint(plan: &PlanNode) -> u64 {
    let mut h = Fnv64::new();
    hash_plan_node(plan, &mut h);
    h.finish()
}

fn hash_plan_node(plan: &PlanNode, h: &mut Fnv64) {
    h.write_u8(plan.op.kind().index() as u8);
    h.write_f64(plan.est_cardinality);
    h.write_f64(plan.output_width);
    match &plan.op {
        PhysOperator::SeqScan { table, predicates } => {
            h.write_u32(table.0);
            hash_predicates(predicates, h);
        }
        PhysOperator::IndexScan {
            table,
            index_column,
            lo,
            hi,
            residual,
        } => {
            h.write_u32(table.0);
            h.write_u32(index_column.table.0);
            h.write_u32(index_column.column.0);
            hash_opt_f64(*lo, h);
            hash_opt_f64(*hi, h);
            hash_predicates(residual, h);
        }
        PhysOperator::HashJoin {
            build_key,
            probe_key,
        } => {
            h.write_u32(build_key.table.0);
            h.write_u32(build_key.column.0);
            h.write_u32(probe_key.table.0);
            h.write_u32(probe_key.column.0);
        }
        PhysOperator::NestedLoopJoin {
            outer_key,
            inner_key,
        } => {
            h.write_u32(outer_key.table.0);
            h.write_u32(outer_key.column.0);
            h.write_u32(inner_key.table.0);
            h.write_u32(inner_key.column.0);
        }
        PhysOperator::Aggregate { aggregates } => {
            h.write_u8(aggregates.len() as u8);
            for agg in aggregates {
                hash_aggregate(agg, h);
            }
        }
    }
    h.write_u8(plan.children.len() as u8);
    for child in &plan.children {
        hash_plan_node(child, h);
    }
}

fn hash_opt_f64(value: Option<f64>, h: &mut Fnv64) {
    match value {
        Some(v) => {
            h.write_u8(1);
            h.write_f64(v);
        }
        None => h.write_u8(0),
    }
}

fn hash_predicates(predicates: &[Predicate], h: &mut Fnv64) {
    h.write_u8(predicates.len() as u8);
    for p in predicates {
        h.write_u32(p.column.table.0);
        h.write_u32(p.column.column.0);
        h.write_u8(p.op.index() as u8);
        hash_value(&p.value, h);
    }
}

fn hash_aggregate(agg: &Aggregate, h: &mut Fnv64) {
    h.write_u8(agg.func.index() as u8);
    match agg.column {
        Some(c) => {
            h.write_u8(1);
            h.write_u32(c.table.0);
            h.write_u32(c.column.0);
        }
        None => h.write_u8(0),
    }
}

fn hash_value(value: &zsdb_catalog::Value, h: &mut Fnv64) {
    use zsdb_catalog::Value;
    match value {
        Value::Null => h.write_u8(0),
        Value::Int(v) => {
            h.write_u8(1);
            h.write_u64(*v as u64);
        }
        Value::Float(v) => {
            h.write_u8(2);
            h.write_f64(*v);
        }
        Value::Cat(v) => {
            h.write_u8(3);
            h.write_u32(*v);
        }
        Value::Bool(v) => {
            h.write_u8(4);
            h.write_u8(*v as u8);
        }
    }
}

/// Stable fingerprint of a featurized plan graph (node kinds, feature
/// bits, edges).  Used by the model registry to identify integrity-probe
/// graphs in artifact manifests.
pub fn graph_fingerprint(graph: &PlanGraph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(graph.nodes.len() as u64);
    h.write_u64(graph.root as u64);
    for node in &graph.nodes {
        h.write_u8(node.kind.index() as u8);
        h.write_u64(node.features.len() as u64);
        for f in &node.features {
            h.write_f64(*f);
        }
        h.write_u64(node.children.len() as u64);
        for &c in &node.children {
            h.write_u64(c as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{featurize_plan, FeaturizerConfig};
    use std::collections::HashMap;
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn sample_plan() -> PlanNode {
        use zsdb_catalog::{ColumnId, ColumnRef, TableId};
        PlanNode {
            op: PhysOperator::HashJoin {
                build_key: ColumnRef::new(TableId(0), ColumnId(1)),
                probe_key: ColumnRef::new(TableId(2), ColumnId(0)),
            },
            children: vec![
                PlanNode::leaf(
                    PhysOperator::SeqScan {
                        table: TableId(0),
                        predicates: vec![],
                    },
                    128.0,
                    10.0,
                    16.0,
                ),
                PlanNode::leaf(
                    PhysOperator::SeqScan {
                        table: TableId(2),
                        predicates: vec![],
                    },
                    1024.0,
                    80.0,
                    24.0,
                ),
            ],
            est_cardinality: 512.0,
            est_cost: 200.0,
            output_width: 40.0,
        }
    }

    #[test]
    fn fingerprint_is_a_pure_stable_function() {
        // Golden value: pins the byte-level hash definition, so any change
        // that would silently invalidate persisted fingerprints (or break
        // cross-process stability) fails this test.
        let plan = sample_plan();
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&plan));
        assert_eq!(plan_fingerprint(&plan), 0x94B1_C0AA_B259_A63A);
    }

    #[test]
    fn distinct_plans_have_distinct_fingerprints_across_a_workload() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 200, 9);
        let mut by_fingerprint: HashMap<u64, PlanNode> = HashMap::new();
        let mut distinct = 0usize;
        for q in &queries {
            let plan = runner.plan(q);
            let fp = plan_fingerprint(&plan);
            match by_fingerprint.get(&fp) {
                Some(seen) => assert_eq!(
                    seen, &plan,
                    "fingerprint collision between structurally different plans"
                ),
                None => {
                    by_fingerprint.insert(fp, plan);
                    distinct += 1;
                }
            }
        }
        assert!(distinct > 50, "workload produced only {distinct} shapes");
    }

    #[test]
    fn identical_plans_from_identically_seeded_databases_agree() {
        // Two independently generated (but identically seeded) databases
        // and workloads must produce identical fingerprints — the property
        // that makes fingerprints stable across processes.
        let fps = |_: ()| -> Vec<u64> {
            let db = Database::generate(presets::imdb_like(0.02), 5);
            let runner = QueryRunner::with_defaults(&db);
            let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 30, 4);
            queries
                .iter()
                .map(|q| plan_fingerprint(&runner.plan(q)))
                .collect()
        };
        assert_eq!(fps(()), fps(()));
    }

    #[test]
    fn fingerprint_ignores_cost_but_not_cardinality() {
        let plan = sample_plan();
        let mut costlier = plan.clone();
        costlier.est_cost *= 10.0;
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&costlier));

        let mut bigger = plan.clone();
        bigger.est_cardinality *= 2.0;
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&bigger));
    }

    #[test]
    fn graph_fingerprint_tracks_features() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 1);
        let plan = runner.plan(&queries[0]);
        let g = featurize_plan(db.catalog(), &plan, FeaturizerConfig::exact());
        let fp = graph_fingerprint(&g);
        assert_eq!(fp, graph_fingerprint(&g.clone()));
        let mut perturbed = g.clone();
        perturbed.nodes[0].features[0] += 1.0;
        assert_ne!(fp, graph_fingerprint(&perturbed));
    }
}
