//! Structural fingerprints of physical plans and featurized plan graphs.
//!
//! The serving layer caches featurized [`PlanGraph`]s keyed by a
//! fingerprint of the incoming [`PlanNode`](zsdb_engine::PlanNode) (and
//! the engine's observation log keys observed executions the same way),
//! so repeated query shapes skip
//! re-featurization entirely.  The fingerprint therefore hashes exactly the
//! plan structure the featurizer reads (operator kinds, tables, columns,
//! predicates, aggregates, cardinality/width annotations and child order)
//! using a fixed-constant FNV-1a — **stable across processes, seeds and
//! platforms**, unlike `std`'s `DefaultHasher`, whose algorithm is not
//! guaranteed between Rust releases.

use crate::features::PlanGraph;
use zsdb_engine::fingerprint::Fnv64;

/// Stable structural fingerprint of a physical plan.
///
/// Implemented in [`zsdb_engine::fingerprint`] (the engine fingerprints
/// its own executed plans for the observation log) and re-exported here
/// unchanged, so the serving cache and the engine key by the identical
/// hash.
pub use zsdb_engine::fingerprint::plan_fingerprint;

/// Stable fingerprint of a featurized plan graph (node kinds, feature
/// bits, edges).  Used by the model registry to identify integrity-probe
/// graphs in artifact manifests.
pub fn graph_fingerprint(graph: &PlanGraph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(graph.nodes.len() as u64);
    h.write_u64(graph.root as u64);
    for node in &graph.nodes {
        h.write_u8(node.kind.index() as u8);
        h.write_u64(node.features.len() as u64);
        for f in &node.features {
            h.write_f64(*f);
        }
        h.write_u64(node.children.len() as u64);
        for &c in &node.children {
            h.write_u64(c as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{featurize_plan, FeaturizerConfig};
    use std::collections::HashMap;
    use zsdb_catalog::presets;
    use zsdb_engine::{PhysOperator, PlanNode, QueryRunner};
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn sample_plan() -> PlanNode {
        use zsdb_catalog::{ColumnId, ColumnRef, TableId};
        PlanNode {
            op: PhysOperator::HashJoin {
                build_key: ColumnRef::new(TableId(0), ColumnId(1)),
                probe_key: ColumnRef::new(TableId(2), ColumnId(0)),
            },
            children: vec![
                PlanNode::leaf(
                    PhysOperator::SeqScan {
                        table: TableId(0),
                        predicates: vec![],
                    },
                    128.0,
                    10.0,
                    16.0,
                ),
                PlanNode::leaf(
                    PhysOperator::SeqScan {
                        table: TableId(2),
                        predicates: vec![],
                    },
                    1024.0,
                    80.0,
                    24.0,
                ),
            ],
            est_cardinality: 512.0,
            est_cost: 200.0,
            output_width: 40.0,
        }
    }

    #[test]
    fn fingerprint_is_a_pure_stable_function() {
        // Golden value: pins the byte-level hash definition, so any change
        // that would silently invalidate persisted fingerprints (or break
        // cross-process stability) fails this test.
        let plan = sample_plan();
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&plan));
        assert_eq!(plan_fingerprint(&plan), 0x94B1_C0AA_B259_A63A);
    }

    #[test]
    fn distinct_plans_have_distinct_fingerprints_across_a_workload() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 200, 9);
        let mut by_fingerprint: HashMap<u64, PlanNode> = HashMap::new();
        let mut distinct = 0usize;
        for q in &queries {
            let plan = runner.plan(q);
            let fp = plan_fingerprint(&plan);
            match by_fingerprint.get(&fp) {
                Some(seen) => assert_eq!(
                    seen, &plan,
                    "fingerprint collision between structurally different plans"
                ),
                None => {
                    by_fingerprint.insert(fp, plan);
                    distinct += 1;
                }
            }
        }
        assert!(distinct > 50, "workload produced only {distinct} shapes");
    }

    #[test]
    fn identical_plans_from_identically_seeded_databases_agree() {
        // Two independently generated (but identically seeded) databases
        // and workloads must produce identical fingerprints — the property
        // that makes fingerprints stable across processes.
        let fps = |_: ()| -> Vec<u64> {
            let db = Database::generate(presets::imdb_like(0.02), 5);
            let runner = QueryRunner::with_defaults(&db);
            let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 30, 4);
            queries
                .iter()
                .map(|q| plan_fingerprint(&runner.plan(q)))
                .collect()
        };
        assert_eq!(fps(()), fps(()));
    }

    #[test]
    fn fingerprint_ignores_cost_but_not_cardinality() {
        let plan = sample_plan();
        let mut costlier = plan.clone();
        costlier.est_cost *= 10.0;
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&costlier));

        let mut bigger = plan.clone();
        bigger.est_cardinality *= 2.0;
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&bigger));
    }

    #[test]
    fn graph_fingerprint_tracks_features() {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 1);
        let plan = runner.plan(&queries[0]);
        let g = featurize_plan(db.catalog(), &plan, FeaturizerConfig::exact());
        let fp = graph_fingerprint(&g);
        assert_eq!(fp, graph_fingerprint(&g.clone()));
        let mut perturbed = g.clone();
        perturbed.nodes[0].features[0] += 1.0;
        assert_ne!(fp, graph_fingerprint(&perturbed));
    }
}
