//! The zero-shot cost model: DeepSets-style bottom-up message passing over
//! plan graphs (paper Section 3.1).
//!
//! Architecture, exactly as sketched in the paper:
//!
//! 1. every node's features are encoded into a fixed-size hidden vector by
//!    a node-type-specific encoder MLP,
//! 2. the DAG is traversed bottom-up; at every node the hidden states of
//!    its children are **summed** (DeepSets) and combined with the node's
//!    own encoding through a combine MLP, producing the node's final hidden
//!    state,
//! 3. the root's hidden state is fed into an output MLP that predicts the
//!    runtime (in log space).
//!
//! Training uses plain MSE on `ln(runtime)`; gradients flow back through
//! the combine/encoder MLPs by traversing the DAG in reverse topological
//! order.

use crate::features::{NodeKind, PlanGraph};
use serde::{Deserialize, Serialize};
use zsdb_nn::{Activation, Adam, ForwardScratch, Mlp, MlpCache};

/// Hyper-parameters of the zero-shot cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden dimension of node states.
    pub hidden_dim: usize,
    /// Hidden width of the final output MLP.
    pub output_hidden_dim: usize,
    /// Weight initialisation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden_dim: 48,
            output_hidden_dim: 32,
            seed: 0xC0FFEE,
        }
    }
}

impl ModelConfig {
    /// A small configuration for unit tests (fast training).
    pub fn tiny() -> Self {
        ModelConfig {
            hidden_dim: 16,
            output_hidden_dim: 8,
            seed: 7,
        }
    }
}

/// The shared plan-graph encoder: per-node-kind encoder MLPs plus the
/// DeepSets combine MLP, producing one hidden state per graph node.
///
/// This is the *task-independent* part of every zero-shot model.  The
/// single-head [`ZeroShotCostModel`] puts one output MLP on top of the
/// root state; the multi-task model (`zsdb_multitask`) attaches several
/// task heads to the same states.  The batched (level, kind)-scheduled
/// message passing lives in [`crate::batch`] as methods on this type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEncoder {
    /// Hidden dimension of node states.
    pub(crate) hidden_dim: usize,
    /// One encoder per node kind, indexed by `NodeKind::index()`.
    pub(crate) encoders: Vec<Mlp>,
    /// Combine MLP: `[own encoding ‖ sum of child states] → hidden`.
    pub(crate) combine: Mlp,
}

impl PlanEncoder {
    /// Create a freshly initialised encoder.  The per-kind encoder seeds
    /// and the combine seed are derived from `seed` exactly as the
    /// original single-head model derived them, so a `PlanEncoder` built
    /// with the same `(hidden_dim, seed)` is weight-identical to the
    /// encoder half of a pre-refactor `ZeroShotCostModel`.
    pub fn new(hidden_dim: usize, seed: u64) -> Self {
        let encoders = NodeKind::ALL
            .iter()
            .map(|kind| {
                Mlp::new(
                    &[kind.feature_dim(), hidden_dim, hidden_dim],
                    Activation::LeakyRelu,
                    seed ^ (kind.index() as u64 + 1),
                )
            })
            .collect();
        let combine = Mlp::new(
            &[2 * hidden_dim, hidden_dim, hidden_dim],
            Activation::LeakyRelu,
            seed ^ 0x10,
        );
        PlanEncoder {
            hidden_dim,
            encoders,
            combine,
        }
    }

    /// Hidden dimension of the node states this encoder produces.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Total number of trainable encoder parameters.
    pub fn num_parameters(&self) -> usize {
        self.encoders.iter().map(Mlp::num_parameters).sum::<usize>() + self.combine.num_parameters()
    }

    /// Every parameter buffer in canonical order (encoders by node kind,
    /// then combine; weights before bias per layer).
    pub fn params(&self) -> Vec<&zsdb_nn::ParamBuf> {
        let mut params = Vec::new();
        for e in &self.encoders {
            params.extend(e.params());
        }
        params.extend(self.combine.params());
        params
    }

    /// Mutable counterpart of [`PlanEncoder::params`], same order.
    pub fn params_mut(&mut self) -> Vec<&mut zsdb_nn::ParamBuf> {
        let mut params = Vec::new();
        for e in &mut self.encoders {
            params.extend(e.params_mut());
        }
        params.extend(self.combine.params_mut());
        params
    }

    /// Zero all encoder parameter gradients.
    pub fn zero_grad(&mut self) {
        for e in &mut self.encoders {
            e.zero_grad();
        }
        self.combine.zero_grad();
    }
}

/// The zero-shot cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZeroShotCostModel {
    pub(crate) config: ModelConfig,
    /// Shared plan-graph encoder (node-kind encoders + combine MLP).
    pub(crate) encoder: PlanEncoder,
    /// Output MLP: root hidden state → predicted `ln(runtime_secs)`.
    pub(crate) output: Mlp,
}

/// Reusable buffers for allocation-free inference (no backprop caches).
///
/// Serving workers hold one scratch per thread and push every request
/// through [`ZeroShotCostModel::predict_with`]; all buffers are reused
/// across calls, so steady-state inference performs no heap allocation.
/// The model itself is only read, so one model can be shared (`&self` /
/// `Arc`) across any number of worker threads, each with its own scratch.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// Combined hidden state per node, one flat buffer with stride
    /// `hidden_dim` (node `i`'s state is `states[i*h..(i+1)*h]`) — a
    /// single reusable allocation instead of one `Vec` per node.
    states: Vec<f64>,
    /// Ping-pong buffers for the encoder/combine/output MLPs.
    mlp: ForwardScratch,
    /// `[own encoding ‖ sum of child states]` input of the combine MLP.
    combine_input: Vec<f64>,
}

/// Per-graph forward caches needed for backpropagation.
struct ForwardTrace {
    /// Encoder output and cache per node.
    encoder: Vec<(Vec<f64>, MlpCache)>,
    /// Child-state sum per node.
    child_sums: Vec<Vec<f64>>,
    /// Combine output and cache per node.
    combine: Vec<(Vec<f64>, MlpCache)>,
    /// Output MLP cache.
    output_cache: MlpCache,
    /// Predicted log runtime.
    prediction: f64,
}

impl ZeroShotCostModel {
    /// Create a freshly initialised model.
    pub fn new(config: ModelConfig) -> Self {
        let encoder = PlanEncoder::new(config.hidden_dim, config.seed);
        let output = Mlp::new(
            &[config.hidden_dim, config.output_hidden_dim, 1],
            Activation::LeakyRelu,
            config.seed ^ 0x20,
        );
        ZeroShotCostModel {
            config,
            encoder,
            output,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The shared plan-graph encoder.
    pub fn encoder(&self) -> &PlanEncoder {
        &self.encoder
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.encoder.num_parameters() + self.output.num_parameters()
    }

    /// Predict the runtime (in seconds) of a featurized plan.
    pub fn predict(&self, graph: &PlanGraph) -> f64 {
        self.predict_with(graph, &mut InferenceScratch::default())
    }

    /// Predict the log-runtime of a featurized plan (the model's native
    /// output space).
    pub fn predict_log(&self, graph: &PlanGraph) -> f64 {
        self.predict_log_with(graph, &mut InferenceScratch::default())
    }

    /// Allocation-free runtime prediction with caller-provided scratch
    /// buffers (the serving hot path).  Bit-identical to
    /// [`ZeroShotCostModel::predict`].
    pub fn predict_with(&self, graph: &PlanGraph, scratch: &mut InferenceScratch) -> f64 {
        self.predict_log_with(graph, scratch).exp()
    }

    /// Allocation-free log-runtime prediction with caller-provided scratch
    /// buffers.
    ///
    /// Performs the same floating-point operations in the same order as
    /// the training-time forward pass, but skips every backprop cache —
    /// no per-layer activation snapshots, no per-node `MlpCache` — which
    /// is what makes concurrent shared-read inference cheap.
    pub fn predict_log_with(&self, graph: &PlanGraph, scratch: &mut InferenceScratch) -> f64 {
        let h = self.config.hidden_dim;
        // Flat node-state buffer, stride `h`.  Every slot a parent reads is
        // fully overwritten earlier in this same pass (children precede
        // parents), so stale values from previous graphs are never read
        // and the buffer only ever *grows* to the high-water mark.
        let needed = graph.len() * h;
        if scratch.states.len() < needed {
            scratch.states.resize(needed, 0.0);
        }

        for (idx, node) in graph.nodes.iter().enumerate() {
            // Own encoding, then the DeepSets sum of child states, laid out
            // back-to-back as the combine MLP's input.
            let combine_input = &mut scratch.combine_input;
            combine_input.clear();
            combine_input.reserve(2 * h);
            combine_input.extend_from_slice(
                self.encoder.encoders[node.kind.index()]
                    .forward_into(&node.features, &mut scratch.mlp),
            );
            combine_input.resize(2 * h, 0.0);
            let (_, sum) = combine_input.split_at_mut(h);
            for &c in &node.children {
                for (s, v) in sum.iter_mut().zip(&scratch.states[c * h..(c + 1) * h]) {
                    *s += v;
                }
            }
            let state = self
                .encoder
                .combine
                .forward_into(combine_input, &mut scratch.mlp);
            scratch.states[idx * h..(idx + 1) * h].copy_from_slice(state);
        }

        let root = graph.root;
        self.output
            .forward_into(&scratch.states[root * h..(root + 1) * h], &mut scratch.mlp)[0]
    }

    fn forward(&self, graph: &PlanGraph) -> ForwardTrace {
        let h = self.config.hidden_dim;
        let mut encoder = Vec::with_capacity(graph.len());
        let mut child_sums = Vec::with_capacity(graph.len());
        let mut combine: Vec<(Vec<f64>, MlpCache)> = Vec::with_capacity(graph.len());

        for node in &graph.nodes {
            let enc = self.encoder.encoders[node.kind.index()].forward_cached(&node.features);
            // Children appear before parents, so their combined states exist.
            let mut sum = vec![0.0; h];
            for &c in &node.children {
                let child_state: &Vec<f64> = &combine[c].0;
                for (s, v) in sum.iter_mut().zip(child_state) {
                    *s += v;
                }
            }
            let mut combine_input = enc.0.clone();
            combine_input.extend_from_slice(&sum);
            let comb = self.encoder.combine.forward_cached(&combine_input);
            encoder.push(enc);
            child_sums.push(sum);
            combine.push(comb);
        }

        let (out, output_cache) = self.output.forward_cached(&combine[graph.root].0);
        ForwardTrace {
            encoder,
            child_sums,
            combine,
            output_cache,
            prediction: out[0],
        }
    }

    /// One training example: forward, compute the squared error on
    /// `ln(runtime)`, backpropagate and *accumulate* gradients (no
    /// optimizer step).  Returns the squared error.
    pub fn accumulate_gradients(&mut self, graph: &PlanGraph, target_runtime_secs: f64) -> f64 {
        let trace = self.forward(graph);
        let target = target_runtime_secs.max(1e-9).ln();
        let error = trace.prediction - target;
        let loss = error * error;

        // d loss / d prediction
        let d_pred = 2.0 * error;
        let d_root_state = self.output.backward(&trace.output_cache, &[d_pred]);

        // Gradient w.r.t. each node's combined state, accumulated from all
        // parents (reverse topological order = reverse index order).
        let h = self.config.hidden_dim;
        let mut d_state: Vec<Vec<f64>> = vec![vec![0.0; h]; graph.len()];
        d_state[graph.root] = d_root_state;

        for idx in (0..graph.len()).rev() {
            let node = &graph.nodes[idx];
            let grad = std::mem::take(&mut d_state[idx]);
            if grad.iter().all(|g| *g == 0.0) {
                continue;
            }
            // Backprop through the combine MLP of this node.
            let d_combine_input = self.encoder.combine.backward(&trace.combine[idx].1, &grad);
            let (d_enc, d_children_sum) = d_combine_input.split_at(h);
            // Encoder gradient.
            self.encoder.encoders[node.kind.index()].backward(&trace.encoder[idx].1, d_enc);
            // Each child receives the same gradient (sum pooling).
            for &c in &node.children {
                for (acc, g) in d_state[c].iter_mut().zip(d_children_sum) {
                    *acc += g;
                }
            }
            // Silence the unused-field warning: child_sums are only needed
            // for debugging numerical issues.
            let _ = &trace.child_sums[idx];
        }
        loss
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.output.zero_grad();
    }

    /// Apply one optimizer step over all parameters (in the canonical
    /// parameter order — the same layout the flat gradient reduction of
    /// [`ZeroShotCostModel::export_gradients`] uses).
    pub fn apply_step(&mut self, adam: &mut Adam) {
        adam.step(&mut self.all_params_mut());
    }

    /// Every parameter buffer in the model's canonical order (encoders by
    /// node kind, then combine, then output; weights before bias per
    /// layer).  This order defines the layout of the flat gradient vectors
    /// used by the deterministic shard reduction in the trainer.
    pub(crate) fn all_params(&self) -> Vec<&zsdb_nn::ParamBuf> {
        let mut params = self.encoder.params();
        params.extend(self.output.params());
        params
    }

    /// Mutable counterpart of [`ZeroShotCostModel::all_params`], same
    /// order.
    pub(crate) fn all_params_mut(&mut self) -> Vec<&mut zsdb_nn::ParamBuf> {
        let mut params = self.encoder.params_mut();
        params.extend(self.output.params_mut());
        params
    }

    /// Export the accumulated gradients as one flat vector in canonical
    /// parameter order (cleared and refilled).
    pub fn export_gradients(&self, out: &mut Vec<f64>) {
        out.clear();
        for p in self.all_params() {
            out.extend_from_slice(&p.grad);
        }
    }

    /// Add a flat gradient vector (as produced by
    /// [`ZeroShotCostModel::export_gradients`]) onto this model's
    /// gradient buffers.  Together with a fixed caller-side reduction
    /// order this makes multi-shard gradient accumulation deterministic.
    pub fn add_gradients(&mut self, flat: &[f64]) {
        let mut offset = 0;
        for p in self.all_params_mut() {
            let len = p.grad.len();
            for (g, v) in p.grad.iter_mut().zip(&flat[offset..offset + len]) {
                *g += v;
            }
            offset += len;
        }
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
    }

    /// Copy the parameter *values* (not gradients or optimizer moments)
    /// from `src`.  Used to refresh worker-shard model replicas after
    /// every optimizer step; allocation-free (buffer-to-buffer copies).
    pub fn copy_weights_from(&mut self, src: &Self) {
        let from = src.all_params();
        let dst = self.all_params_mut();
        assert_eq!(dst.len(), from.len(), "model shapes differ");
        for (d, s) in dst.into_iter().zip(from) {
            d.data.copy_from_slice(&s.data);
        }
    }

    /// Serialize the model to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Load a model from its JSON representation.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{featurize_execution, FeaturizerConfig};
    use zsdb_catalog::presets;
    use zsdb_engine::QueryRunner;
    use zsdb_nn::q_error;
    use zsdb_query::WorkloadGenerator;
    use zsdb_storage::Database;

    fn graphs() -> Vec<PlanGraph> {
        let db = Database::generate(presets::imdb_like(0.02), 3);
        let runner = QueryRunner::with_defaults(&db);
        let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 30, 1);
        runner
            .run_workload(&queries, 0)
            .iter()
            .map(|e| featurize_execution(db.catalog(), e, FeaturizerConfig::exact()))
            .collect()
    }

    #[test]
    fn predictions_are_finite_and_positive() {
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        for g in graphs() {
            let p = model.predict(&g);
            assert!(p.is_finite() && p > 0.0);
        }
    }

    #[test]
    fn model_overfits_a_small_training_set() {
        // Sanity check of the whole forward/backward path: training on a
        // handful of graphs must drive the error down dramatically.
        let graphs = graphs();
        let mut model = ZeroShotCostModel::new(ModelConfig::tiny());
        let mut adam = Adam::new(3e-3);
        for _ in 0..150 {
            model.zero_grad();
            for g in &graphs {
                model.accumulate_gradients(g, g.runtime_secs.unwrap());
            }
            model.apply_step(&mut adam);
        }
        let median_q = {
            let mut qs: Vec<f64> = graphs
                .iter()
                .map(|g| q_error(model.predict(g), g.runtime_secs.unwrap()))
                .collect();
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            qs[qs.len() / 2]
        };
        assert!(median_q < 1.6, "median training q-error {median_q}");
    }

    #[test]
    fn gradient_accumulation_matches_finite_differences_on_output_mlp() {
        let graphs = graphs();
        let g = &graphs[0];
        let target = g.runtime_secs.unwrap();
        let mut model = ZeroShotCostModel::new(ModelConfig::tiny());

        model.zero_grad();
        model.accumulate_gradients(g, target);
        // Pick one parameter of the output MLP and compare with a finite
        // difference of the loss.
        let analytic = model.output.params_mut()[0].grad[0];
        let eps = 1e-6;
        let orig = model.output.params_mut()[0].data[0];
        let loss_at = |m: &ZeroShotCostModel| {
            let err = m.predict_log(g) - target.max(1e-9).ln();
            err * err
        };
        model.output.params_mut()[0].data[0] = orig + eps;
        let up = loss_at(&model);
        model.output.params_mut()[0].data[0] = orig - eps;
        let down = loss_at(&model);
        model.output.params_mut()[0].data[0] = orig;
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn serialization_preserves_predictions() {
        let graphs = graphs();
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        let json = model.to_json();
        let restored = ZeroShotCostModel::from_json(&json).unwrap();
        for g in graphs.iter().take(5) {
            assert!((model.predict(g) - restored.predict(g)).abs() < 1e-9);
        }
        assert_eq!(model.num_parameters(), restored.num_parameters());
    }

    #[test]
    fn scratch_inference_is_bit_identical_to_fresh_prediction() {
        // One reused scratch across many graphs must produce exactly the
        // same bits as per-call predictions — the property the concurrent
        // serving layer relies on to match the single-threaded path.
        let graphs = graphs();
        let model = ZeroShotCostModel::new(ModelConfig::tiny());
        let mut scratch = InferenceScratch::default();
        for g in &graphs {
            let fresh = model.predict(g);
            let reused = model.predict_with(g, &mut scratch);
            assert_eq!(fresh.to_bits(), reused.to_bits());
            assert_eq!(
                model.predict_log(g).to_bits(),
                model.predict_log_with(g, &mut scratch).to_bits()
            );
        }
    }

    #[test]
    fn parameter_count_scales_with_hidden_dim() {
        let small = ZeroShotCostModel::new(ModelConfig::tiny());
        let large = ZeroShotCostModel::new(ModelConfig::default());
        assert!(large.num_parameters() > small.num_parameters());
    }
}
