//! Full zero-shot cost-estimation pipeline (paper Section 3): train on a
//! corpus of synthetic databases, then evaluate on the scale / synthetic /
//! JOB-light benchmark workloads over the unseen IMDB-like database, with
//! both exact and estimated cardinalities — a miniature version of the
//! paper's Table 1 upper rows.
//!
//! Run with: `cargo run --release --example cost_estimation`

use zero_shot_db::catalog::{presets, SchemaGenerator};
use zero_shot_db::engine::{EngineConfig, HardwareProfile, QueryRunner};
use zero_shot_db::query::{BenchmarkWorkload, WorkloadKind};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{collect_training_corpus, TrainingDataConfig};
use zero_shot_db::zeroshot::{evaluate, FeaturizerConfig, ModelConfig, Trainer, TrainingConfig};

fn main() {
    let data_config = TrainingDataConfig {
        num_databases: 6,
        queries_per_database: 250,
        ..TrainingDataConfig::tiny()
    };
    println!("Collecting multi-database training corpus ...");
    let corpus = collect_training_corpus(&data_config);
    let schemas = SchemaGenerator::new(data_config.schema_config.clone()).generate_corpus(
        "train",
        data_config.num_databases,
        data_config.seed,
    );

    let imdb = Database::generate(presets::imdb_like(0.04), 2024);

    for featurizer in [FeaturizerConfig::exact(), FeaturizerConfig::estimated()] {
        let trainer = Trainer::new(
            ModelConfig::default(),
            TrainingConfig {
                epochs: 30,
                ..TrainingConfig::default()
            },
            featurizer,
        );
        let graphs = trainer.featurize_corpus(&corpus, |name| {
            schemas.iter().find(|s| s.name == name).expect("catalog")
        });
        let model = trainer.train(&graphs);
        println!(
            "\n=== Zero-shot model with {:?} cardinalities (train q-error {:.2}) ===",
            featurizer.cardinality_mode, model.final_train_qerror
        );

        for kind in WorkloadKind::FIGURE3 {
            let workload = BenchmarkWorkload::generate(kind, imdb.catalog(), 80, 99);
            let runner =
                QueryRunner::new(&imdb, EngineConfig::default(), HardwareProfile::default());
            let executions = runner.run_workload(&workload.queries, 55);
            let report = evaluate(&model, &imdb, kind.name(), &executions);
            println!("  {report}");
        }
    }
}
