//! Explore the substrate: generate a synthetic database, look at its
//! schema, generate a workload, and inspect optimizer plans, true
//! cardinalities, work counters and simulated runtimes.
//!
//! Run with: `cargo run --release --example workload_explorer`

use zero_shot_db::catalog::{GeneratorConfig, SchemaGenerator};
use zero_shot_db::engine::QueryRunner;
use zero_shot_db::query::{sql, WorkloadGenerator};
use zero_shot_db::storage::Database;

fn main() {
    // 1. Generate a synthetic schema and materialise its data.
    let schema = SchemaGenerator::new(GeneratorConfig::default()).generate("demo_db", 42);
    println!(
        "Generated schema `{}` with {} tables:",
        schema.name,
        schema.num_tables()
    );
    for (tid, table) in schema.iter_tables() {
        println!(
            "  {:<12} {:>8} rows, {:>5} pages, {} columns",
            table.name,
            table.num_tuples,
            table.num_pages(),
            table.num_columns()
        );
        let _ = tid;
    }
    println!("  foreign keys: {}", schema.foreign_keys().len());

    let db = Database::generate(schema, 7);

    // 2. Generate a workload and run a few queries.
    let queries = WorkloadGenerator::with_defaults().generate(db.catalog(), 5, 3);
    let runner = QueryRunner::with_defaults(&db);

    for query in &queries {
        println!("\n=== {}", sql::to_sql(db.catalog(), query));
        let execution = runner.run(query, 0);
        println!("{}", execution.plan.explain());
        let work = execution.executed.total_work();
        println!(
            "    true result cardinality of root: {} | pages read: {} seq / {} random | hash probes: {}",
            execution.executed.children[0].actual_cardinality,
            work.pages_seq,
            work.pages_random,
            work.hash_probe_tuples
        );
        println!(
            "    simulated runtime: {:.3} ms (optimizer cost {:.1})",
            execution.runtime_secs * 1e3,
            execution.optimizer_cost()
        );
    }
}
