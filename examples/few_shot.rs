//! Few-shot fine-tuning (paper Sections 1 and 4.3): start from a zero-shot
//! model and adapt it to the unseen database with only a handful of
//! executed queries, comparing accuracy before and after.
//!
//! Run with: `cargo run --release --example few_shot`

use zero_shot_db::catalog::{presets, SchemaGenerator};
use zero_shot_db::query::WorkloadSpec;
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{
    collect_for_database, collect_training_corpus, TrainingDataConfig,
};
use zero_shot_db::zeroshot::{
    evaluate, few_shot_finetune_with, FeaturizerConfig, FinetuneConfig, ModelConfig, Trainer,
    TrainingConfig,
};

fn main() {
    let data_config = TrainingDataConfig {
        num_databases: 5,
        queries_per_database: 250,
        ..TrainingDataConfig::tiny()
    };
    println!("Training the zero-shot model ...");
    let corpus = collect_training_corpus(&data_config);
    let schemas = SchemaGenerator::new(data_config.schema_config.clone()).generate_corpus(
        "train",
        data_config.num_databases,
        data_config.seed,
    );
    let trainer = Trainer::new(
        ModelConfig::default(),
        TrainingConfig {
            epochs: 30,
            ..TrainingConfig::default()
        },
        FeaturizerConfig::exact(),
    );
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    let zero_shot = trainer.train(&graphs);

    // The unseen target database plus a small budget of executed queries.
    let imdb = Database::generate(presets::imdb_like(0.04), 31);
    let target_executions = collect_for_database(&imdb, &WorkloadSpec::paper_training(), 120, 17);
    let (few_shot_budget, holdout) = target_executions.split_at(40);

    let before = evaluate(&zero_shot, &imdb, "holdout", holdout);
    println!("\nZero-shot (no queries on the target database): {before}");

    // Few-shot fine-tuning runs through the same incremental
    // `FinetuneConfig` path the online adaptation loop in `zsdb_serve`
    // uses: the batched shard engine, full-batch by default, and
    // bit-identical results for any thread count.
    let finetune_config = FinetuneConfig {
        epochs: 40,
        learning_rate: 1e-3,
        ..FinetuneConfig::default()
    };
    for budget in [5usize, 20, 40] {
        let finetuned = few_shot_finetune_with(
            &zero_shot,
            &imdb,
            &few_shot_budget[..budget],
            finetune_config,
        );
        let after = evaluate(&finetuned, &imdb, "holdout", holdout);
        println!("Few-shot with {budget:>2} target-database queries:      {after}");
    }
    println!(
        "\nFew-shot models reuse the system behaviour already internalised by the zero-shot model,"
    );
    println!("so a handful of queries suffices where workload-driven models need thousands.");
}
