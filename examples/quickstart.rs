//! Quickstart: train a small zero-shot cost model on a handful of synthetic
//! databases and predict query runtimes on a database it has never seen.
//!
//! Run with: `cargo run --release --example quickstart`

use zero_shot_db::catalog::presets;
use zero_shot_db::query::{sql, WorkloadGenerator};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{
    collect_for_database, collect_training_corpus, TrainingDataConfig,
};
use zero_shot_db::zeroshot::{
    evaluate, predict_runtime, FeaturizerConfig, ModelConfig, Trainer, TrainingConfig,
};

fn main() {
    // 1. Collect training data: workloads executed on several *synthetic*
    //    databases (a one-time effort in the zero-shot paradigm).
    let data_config = TrainingDataConfig {
        num_databases: 5,
        queries_per_database: 200,
        ..TrainingDataConfig::tiny()
    };
    println!(
        "Collecting training data on {} synthetic databases ({} queries each) ...",
        data_config.num_databases, data_config.queries_per_database
    );
    let corpus = collect_training_corpus(&data_config);
    let schemas = zero_shot_db::catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);

    // 2. Train the zero-shot model (exact cardinalities as features).
    let trainer = Trainer::new(
        ModelConfig::default(),
        TrainingConfig {
            epochs: 30,
            ..TrainingConfig::default()
        },
        FeaturizerConfig::exact(),
    );
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    println!("Training on {} executed plans ...", graphs.len());
    let model = trainer.train(&graphs);
    println!(
        "Final training median q-error: {:.2}",
        model.final_train_qerror
    );

    // 3. Predict runtimes on an *unseen* database (IMDB-like).
    let imdb = Database::generate(presets::imdb_like(0.03), 123);
    let eval_queries = WorkloadGenerator::with_defaults().generate(imdb.catalog(), 25, 7);
    let executions = collect_for_database(
        &imdb,
        &zero_shot_db::query::WorkloadSpec::paper_training(),
        25,
        7,
    );

    println!("\nPredictions on the unseen IMDB-like database:");
    for (query, execution) in eval_queries.iter().zip(&executions).take(5) {
        let predicted = predict_runtime(&model, &imdb, execution);
        println!(
            "  {}\n    predicted {:.2} ms, actual {:.2} ms",
            sql::to_sql(imdb.catalog(), query),
            predicted * 1e3,
            execution.runtime_secs * 1e3
        );
    }

    let report = evaluate(&model, &imdb, "quickstart", &executions);
    println!("\nZero-shot accuracy on the unseen database: {report}");
}
