//! Serving demo: train a zero-shot cost model, persist it in the model
//! registry, reload it with an integrity check, and answer a concurrent
//! stream of prediction requests through the worker pool.
//!
//! Run with: `cargo run --release --example serve_demo`

use zero_shot_db::catalog::presets;
use zero_shot_db::query::WorkloadGenerator;
use zero_shot_db::serve::{ModelRegistry, PredictionServer, ServerConfig};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{collect_training_corpus, TrainingDataConfig};
use zero_shot_db::zeroshot::features::featurize_plan;
use zero_shot_db::zeroshot::{FeaturizerConfig, ModelConfig, Trainer, TrainingConfig};
use zsdb_engine::QueryRunner;

fn main() {
    // 1. Train a small zero-shot model on synthetic databases.
    let data_config = TrainingDataConfig::tiny();
    println!(
        "Training on {} synthetic databases ...",
        data_config.num_databases
    );
    let corpus = collect_training_corpus(&data_config);
    let schemas = zero_shot_db::catalog::SchemaGenerator::new(data_config.schema_config.clone())
        .generate_corpus("train", data_config.num_databases, data_config.seed);
    let trainer = Trainer::new(
        ModelConfig::tiny(),
        TrainingConfig {
            epochs: 15,
            ..TrainingConfig::tiny()
        },
        FeaturizerConfig::estimated(),
    );
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    let model = trainer.train(&graphs);
    println!("final training q-error: {:.2}", model.final_train_qerror);

    // 2. Register the model: a versioned on-disk artifact with provenance
    //    and prediction round-trip integrity probes.
    let registry_dir =
        std::env::temp_dir().join(format!("zsdb_demo_registry_{}", std::process::id()));
    let registry = ModelRegistry::open(&registry_dir).expect("open registry");
    let version = registry
        .register("zero-shot-cost", &model, &graphs[..5])
        .expect("register model");
    let manifest = registry
        .manifest("zero-shot-cost", version)
        .expect("manifest");
    println!(
        "\nregistered 'zero-shot-cost' v{version} ({} parameters, {} probes) at {}",
        manifest.num_parameters,
        manifest.probes.len(),
        registry_dir.display()
    );

    // 3. Reload it (every load re-verifies the probes bit-for-bit) and
    //    serve an unseen database.
    let served_model = registry.load_latest("zero-shot-cost").expect("load model");
    let imdb = Database::generate(presets::imdb_like(0.03), 123);
    let runner = QueryRunner::with_defaults(&imdb);
    let queries = WorkloadGenerator::with_defaults().generate(imdb.catalog(), 50, 7);
    let plans = runner.plan_workload(&queries);

    let server = PredictionServer::start(
        served_model.clone(),
        imdb.catalog().clone(),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
    );

    // Submit each plan three times: repeats are answered from the feature
    // cache without re-featurizing.
    println!("\nserving {} requests on 4 workers ...", plans.len() * 3);
    let tickets: Vec<_> = (0..3)
        .flat_map(|_| {
            plans
                .iter()
                .map(|p| server.submit(p.clone()).expect("submit"))
        })
        .collect();
    let predictions: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("wait"))
        .collect();

    for (plan, prediction) in plans.iter().zip(&predictions).take(3) {
        let reference = served_model.predict(&featurize_plan(
            imdb.catalog(),
            plan,
            served_model.featurizer,
        ));
        println!(
            "  plan {:#018x}: served {:.2} ms (direct {:.2} ms, cache_hit={})",
            prediction.fingerprint,
            prediction.runtime_secs * 1e3,
            reference * 1e3,
            prediction.cache_hit
        );
    }

    let metrics = server.shutdown();
    println!("\n{metrics}");
    let _ = std::fs::remove_dir_all(&registry_dir);
}
