//! What-if index tuning on an unseen database (paper Section 4.1): the
//! zero-shot model predicts how query runtimes would change if a certain
//! index existed, without ever having executed a query on that database.
//!
//! Run with: `cargo run --release --example index_whatif`

use zero_shot_db::catalog::{presets, SchemaGenerator};
use zero_shot_db::engine::WhatIfPlanner;
use zero_shot_db::query::{sql, BenchmarkWorkload, WorkloadKind};
use zero_shot_db::storage::Database;
use zero_shot_db::zeroshot::dataset::{collect_training_corpus, TrainingDataConfig};
use zero_shot_db::zeroshot::{
    FeaturizerConfig, ModelConfig, Trainer, TrainingConfig, WhatIfCostEstimator,
};

fn main() {
    // Training databases get a random-but-fixed set of indexes so the model
    // sees index scans during training (as in the paper).
    let data_config = TrainingDataConfig {
        num_databases: 5,
        queries_per_database: 250,
        random_indexes_per_database: 3,
        ..TrainingDataConfig::tiny()
    };
    println!("Collecting training data (with random indexes per database) ...");
    let corpus = collect_training_corpus(&data_config);
    let schemas = SchemaGenerator::new(data_config.schema_config.clone()).generate_corpus(
        "train",
        data_config.num_databases,
        data_config.seed,
    );
    let trainer = Trainer::new(
        ModelConfig::default(),
        TrainingConfig {
            epochs: 30,
            ..TrainingConfig::default()
        },
        FeaturizerConfig::estimated(),
    );
    let graphs = trainer.featurize_corpus(&corpus, |name| {
        schemas.iter().find(|s| s.name == name).expect("catalog")
    });
    let model = trainer.train(&graphs);

    // What-if questions on the unseen IMDB-like database.
    let mut imdb = Database::generate(presets::imdb_like(0.04), 7);
    let estimator = WhatIfCostEstimator::new(&model);
    let planner = WhatIfPlanner::with_defaults();
    let workload = BenchmarkWorkload::generate(WorkloadKind::Index, imdb.catalog(), 40, 3);

    println!("\nWhat-if index predictions on the unseen IMDB-like database:\n");
    let mut shown = 0;
    for (i, query) in workload.queries.iter().enumerate() {
        let Some(column) = WhatIfPlanner::candidate_index_column(query, i as u64) else {
            continue;
        };
        let predicted_with = estimator.predict_with_index(&imdb, query, column);
        let predicted_without = estimator.predict_without_index(&imdb, query);
        let truth = planner.ground_truth_with_index(&mut imdb, query, column, i as u64);
        if shown < 8 {
            let column_name = format!(
                "{}.{}",
                imdb.catalog().table(column.table).name,
                imdb.catalog().column(column).name
            );
            println!("  {}", sql::to_sql(imdb.catalog(), query));
            println!(
                "    hypothetical index on {column_name}: predicted {:.2} ms (without index {:.2} ms), true with index {:.2} ms",
                predicted_with * 1e3,
                predicted_without * 1e3,
                truth.runtime_secs * 1e3
            );
            shown += 1;
        }
    }
    println!("\n(Ground truth was obtained by temporarily building each index and executing.)");
}
